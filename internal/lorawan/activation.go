package lorawan

import (
	"crypto/aes"
	"encoding/binary"
	"fmt"
	"time"
)

// The Things Network supports two activation methods (§4.1): over-the-air
// activation (OTAA), where the device performs a join procedure and receives
// a dynamically assigned address, and activation by personalization (ABP),
// where the session keys and address are provisioned up front. tinySDR
// supports both.

// EUI is an IEEE 64-bit extended unique identifier.
type EUI [8]byte

// DeviceIdentity is the provisioned identity for OTAA.
type DeviceIdentity struct {
	AppEUI EUI
	DevEUI EUI
	AppKey [16]byte
}

// NewABPSession returns a personalized session: keys and address are
// hard-coded at provisioning and the join procedure is skipped.
func NewABPSession(addr DevAddr, nwkSKey, appSKey [16]byte) *Session {
	return &Session{DevAddr: addr, NwkSKey: nwkSKey, AppSKey: appSKey}
}

// JoinRequest is the OTAA join message.
type JoinRequest struct {
	AppEUI   EUI
	DevEUI   EUI
	DevNonce uint16
}

// Encode produces the signed join-request PHYPayload.
func (j *JoinRequest) Encode(appKey [16]byte) []byte {
	out := []byte{byte(MTypeJoinRequest) << 5}
	out = append(out, reverse8(j.AppEUI)...)
	out = append(out, reverse8(j.DevEUI)...)
	out = binary.LittleEndian.AppendUint16(out, j.DevNonce)
	full := cmac(appKey, out)
	return append(out, full[:4]...)
}

// DecodeJoinRequest parses and verifies a join-request.
func DecodeJoinRequest(appKey [16]byte, phy []byte) (*JoinRequest, error) {
	if len(phy) != 1+8+8+2+4 {
		return nil, fmt.Errorf("lorawan: join-request of %d bytes", len(phy))
	}
	if MType(phy[0]>>5) != MTypeJoinRequest {
		return nil, fmt.Errorf("lorawan: not a join-request")
	}
	body := phy[:len(phy)-4]
	full := cmac(appKey, body)
	var got [4]byte
	copy(got[:], phy[len(phy)-4:])
	var want [4]byte
	copy(want[:], full[:4])
	if !micEqual(got, want) {
		return nil, fmt.Errorf("lorawan: join-request MIC mismatch")
	}
	j := &JoinRequest{DevNonce: binary.LittleEndian.Uint16(phy[17:19])}
	copy(j.AppEUI[:], reverseBytes(phy[1:9]))
	copy(j.DevEUI[:], reverseBytes(phy[9:17]))
	return j, nil
}

// JoinAccept is the network's response assigning the device address.
type JoinAccept struct {
	AppNonce uint32 // 24-bit
	NetID    uint32 // 24-bit
	DevAddr  DevAddr
	RXDelay  byte
}

// Encode produces the join-accept PHYPayload. Per the specification the
// network encrypts with an AES *decrypt* operation so that the constrained
// device only ever needs the encrypt primitive.
func (a *JoinAccept) Encode(appKey [16]byte) []byte {
	body := make([]byte, 0, 12)
	body = append(body, byte(a.AppNonce), byte(a.AppNonce>>8), byte(a.AppNonce>>16))
	body = append(body, byte(a.NetID), byte(a.NetID>>8), byte(a.NetID>>16))
	body = binary.LittleEndian.AppendUint32(body, uint32(a.DevAddr))
	body = append(body, 0 /* DLSettings */, a.RXDelay)

	mhdr := byte(MTypeJoinAccept) << 5
	full := cmac(appKey, append([]byte{mhdr}, body...))
	plain := append(body, full[:4]...)

	block, _ := aes.NewCipher(appKey[:])
	enc := make([]byte, len(plain))
	block.Decrypt(enc[:16], plain[:16])
	return append([]byte{mhdr}, enc...)
}

// DecodeJoinAccept decrypts and verifies a join-accept on the device.
func DecodeJoinAccept(appKey [16]byte, phy []byte) (*JoinAccept, error) {
	if len(phy) != 1+16 {
		return nil, fmt.Errorf("lorawan: join-accept of %d bytes", len(phy))
	}
	if MType(phy[0]>>5) != MTypeJoinAccept {
		return nil, fmt.Errorf("lorawan: not a join-accept")
	}
	block, _ := aes.NewCipher(appKey[:])
	plain := make([]byte, 16)
	block.Encrypt(plain, phy[1:])
	body, gotMIC := plain[:12], plain[12:]
	full := cmac(appKey, append([]byte{phy[0]}, body...))
	var got, want [4]byte
	copy(got[:], gotMIC)
	copy(want[:], full[:4])
	if !micEqual(got, want) {
		return nil, fmt.Errorf("lorawan: join-accept MIC mismatch")
	}
	return &JoinAccept{
		AppNonce: uint32(body[0]) | uint32(body[1])<<8 | uint32(body[2])<<16,
		NetID:    uint32(body[3]) | uint32(body[4])<<8 | uint32(body[5])<<16,
		DevAddr:  DevAddr(binary.LittleEndian.Uint32(body[6:10])),
		RXDelay:  body[11],
	}, nil
}

// DeriveSession computes the session keys after a join exchange
// (LoRaWAN 1.0: NwkSKey/AppSKey from AppKey, AppNonce, NetID, DevNonce).
func DeriveSession(appKey [16]byte, accept *JoinAccept, devNonce uint16) *Session {
	block, _ := aes.NewCipher(appKey[:])
	derive := func(tag byte) (k [16]byte) {
		var in [16]byte
		in[0] = tag
		in[1], in[2], in[3] = byte(accept.AppNonce), byte(accept.AppNonce>>8), byte(accept.AppNonce>>16)
		in[4], in[5], in[6] = byte(accept.NetID), byte(accept.NetID>>8), byte(accept.NetID>>16)
		binary.LittleEndian.PutUint16(in[7:], devNonce)
		block.Encrypt(k[:], in[:])
		return k
	}
	return &Session{
		DevAddr: accept.DevAddr,
		NwkSKey: derive(0x01),
		AppSKey: derive(0x02),
	}
}

// Class-A receive windows (the timing the MCU must hit; Table 4 shows the
// radio turnaround is far inside these budgets).
const (
	// RX1Delay is the delay from uplink end to the first receive window.
	RX1Delay = 1 * time.Second
	// RX2Delay is the delay to the second window.
	RX2Delay = 2 * time.Second
)

// ReceiveWindows returns the two Class-A window opening times for an uplink
// that ended at t.
func ReceiveWindows(t time.Duration) (rx1, rx2 time.Duration) {
	return t + RX1Delay, t + RX2Delay
}

func reverse8(e EUI) []byte { return reverseBytes(e[:]) }

func reverseBytes(b []byte) []byte {
	out := make([]byte, len(b))
	for i, v := range b {
		out[len(b)-1-i] = v
	}
	return out
}
