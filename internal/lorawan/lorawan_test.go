package lorawan

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
	"time"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func rfcKey(t *testing.T) [16]byte {
	var k [16]byte
	copy(k[:], mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	return k
}

// RFC 4493 test vectors.
func TestCMACRFC4493Vectors(t *testing.T) {
	key := rfcKey(t)
	msg := mustHex(t, "6bc1bee22e409f96e93d7e117393172a"+
		"ae2d8a571e03ac9c9eb76fac45af8e51"+
		"30c81c46a35ce411e5fbc1191a0a52ef"+
		"f69f2445df4f9b17ad2b417be66c3710")
	cases := []struct {
		n    int
		want string
	}{
		{0, "bb1d6929e95937287fa37d129b756746"},
		{16, "070a16b46b4d4144f79bdd9dd04a287c"},
		{40, "dfa66747de9ae63030ca32611497c827"},
		{64, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	for _, c := range cases {
		got := cmac(key, msg[:c.n])
		if !bytes.Equal(got[:], mustHex(t, c.want)) {
			t.Errorf("CMAC(%d bytes) = %x, want %s", c.n, got, c.want)
		}
	}
}

func TestCMACSubkeysRFC4493(t *testing.T) {
	k1, k2 := subkeys(rfcKey(t))
	if !bytes.Equal(k1[:], mustHex(t, "fbeed618357133667c85e08f7236a8de")) {
		t.Errorf("K1 = %x", k1)
	}
	if !bytes.Equal(k2[:], mustHex(t, "f7ddac306ae266ccf90bc11ee46d513b")) {
		t.Errorf("K2 = %x", k2)
	}
}

func testSession() *Session {
	var nwk, app [16]byte
	for i := range nwk {
		nwk[i] = byte(i)
		app[i] = byte(0xF0 - i)
	}
	return &Session{DevAddr: 0x26011D87, NwkSKey: nwk, AppSKey: app}
}

func TestDataFrameRoundTrip(t *testing.T) {
	s := testSession()
	f := &DataFrame{
		MType: MTypeUnconfirmedUp, DevAddr: s.DevAddr, FCnt: 42,
		FPort: 1, FRMPayload: []byte("temperature=21.5"),
	}
	phy, err := f.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeData(s, phy, Uplink, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.FRMPayload, f.FRMPayload) {
		t.Errorf("payload %q != %q", got.FRMPayload, f.FRMPayload)
	}
	if got.FCnt != 42 || got.FPort != 1 || got.MType != MTypeUnconfirmedUp {
		t.Errorf("fields: %+v", got)
	}
}

func TestDataFramePayloadIsEncryptedOnAir(t *testing.T) {
	s := testSession()
	payload := []byte("super secret reading")
	f := &DataFrame{MType: MTypeUnconfirmedUp, DevAddr: s.DevAddr, FCnt: 1, FPort: 1, FRMPayload: payload}
	phy, _ := f.Encode(s)
	if bytes.Contains(phy, payload) {
		t.Error("plaintext payload visible on air")
	}
}

func TestDataFrameMICRejectsTampering(t *testing.T) {
	s := testSession()
	f := &DataFrame{MType: MTypeUnconfirmedUp, DevAddr: s.DevAddr, FCnt: 7, FPort: 2, FRMPayload: []byte{1, 2, 3}}
	phy, _ := f.Encode(s)
	for _, idx := range []int{0, 1, 6, 9, len(phy) - 1} {
		mut := append([]byte(nil), phy...)
		mut[idx] ^= 0x04
		if _, err := DecodeData(s, mut, Uplink, 0); err == nil {
			t.Errorf("tampered byte %d accepted", idx)
		}
	}
}

func TestDataFrameWrongKeyRejected(t *testing.T) {
	s := testSession()
	f := &DataFrame{MType: MTypeUnconfirmedUp, DevAddr: s.DevAddr, FCnt: 7, FPort: 2, FRMPayload: []byte{1}}
	phy, _ := f.Encode(s)
	other := testSession()
	other.NwkSKey[0] ^= 1
	if _, err := DecodeData(other, phy, Uplink, 0); err == nil {
		t.Error("wrong NwkSKey accepted")
	}
}

func TestDataFrameDirectionEnforced(t *testing.T) {
	s := testSession()
	f := &DataFrame{MType: MTypeUnconfirmedUp, DevAddr: s.DevAddr, FCnt: 1, FPort: 1, FRMPayload: []byte{1}}
	phy, _ := f.Encode(s)
	if _, err := DecodeData(s, phy, Downlink, 0); err == nil {
		t.Error("uplink accepted as downlink")
	}
}

func TestDataFrameDownlink(t *testing.T) {
	s := testSession()
	f := &DataFrame{MType: MTypeUnconfirmedDown, DevAddr: s.DevAddr, FCnt: 9, FPort: 3, ACK: true, FRMPayload: []byte("cmd")}
	phy, err := f.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeData(s, phy, Downlink, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ACK || got.MType != MTypeUnconfirmedDown {
		t.Errorf("downlink fields: %+v", got)
	}
}

func TestEncryptPayloadInvolution(t *testing.T) {
	f := func(payload []byte, fcnt uint32) bool {
		if len(payload) > maxFRMPayload {
			payload = payload[:maxFRMPayload]
		}
		var key [16]byte
		key[0] = 0x42
		enc := encryptPayload(key, 0x01020304, fcnt, Uplink, payload)
		dec := encryptPayload(key, 0x01020304, fcnt, Uplink, enc)
		return bytes.Equal(dec, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEncryptPayloadDependsOnCounter(t *testing.T) {
	var key [16]byte
	a := encryptPayload(key, 1, 1, Uplink, []byte("same payload"))
	b := encryptPayload(key, 1, 2, Uplink, []byte("same payload"))
	if bytes.Equal(a, b) {
		t.Error("keystream must change with frame counter")
	}
}

func TestFrameCounterRollover16Bit(t *testing.T) {
	// Only 16 bits travel on air; the hint restores the upper bits.
	s := testSession()
	f := &DataFrame{MType: MTypeUnconfirmedUp, DevAddr: s.DevAddr, FCnt: 0x00010005, FPort: 1, FRMPayload: []byte("x")}
	phy, _ := f.Encode(s)
	if _, err := DecodeData(s, phy, Uplink, 0); err == nil {
		t.Error("frame with high counter bits decoded without hint")
	}
	got, err := DecodeData(s, phy, Uplink, 0x00010000)
	if err != nil {
		t.Fatal(err)
	}
	if got.FCnt != 0x00010005 {
		t.Errorf("FCnt = %#x", got.FCnt)
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	s := testSession()
	if _, err := (&DataFrame{MType: MTypeJoinRequest}).Encode(s); err == nil {
		t.Error("join-request via data encoder accepted")
	}
	big := &DataFrame{MType: MTypeUnconfirmedUp, DevAddr: s.DevAddr, FRMPayload: make([]byte, 500)}
	if _, err := big.Encode(s); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestOTAAJoinFlow(t *testing.T) {
	id := DeviceIdentity{
		AppEUI: EUI{1, 2, 3, 4, 5, 6, 7, 8},
		DevEUI: EUI{8, 7, 6, 5, 4, 3, 2, 1},
	}
	for i := range id.AppKey {
		id.AppKey[i] = byte(i * 7)
	}
	// Device sends join-request.
	req := &JoinRequest{AppEUI: id.AppEUI, DevEUI: id.DevEUI, DevNonce: 0xBEEF}
	phy := req.Encode(id.AppKey)

	// Network validates it.
	got, err := DecodeJoinRequest(id.AppKey, phy)
	if err != nil {
		t.Fatal(err)
	}
	if got.AppEUI != id.AppEUI || got.DevEUI != id.DevEUI || got.DevNonce != 0xBEEF {
		t.Fatalf("join-request fields: %+v", got)
	}

	// Network answers with join-accept.
	accept := &JoinAccept{AppNonce: 0x123456, NetID: 0x000013, DevAddr: 0x26012345, RXDelay: 1}
	acceptPhy := accept.Encode(id.AppKey)

	// Device decrypts and verifies.
	gotAccept, err := DecodeJoinAccept(id.AppKey, acceptPhy)
	if err != nil {
		t.Fatal(err)
	}
	if gotAccept.DevAddr != accept.DevAddr || gotAccept.AppNonce != accept.AppNonce {
		t.Fatalf("join-accept fields: %+v", gotAccept)
	}

	// Both sides derive the same session.
	devSess := DeriveSession(id.AppKey, gotAccept, req.DevNonce)
	netSess := DeriveSession(id.AppKey, accept, got.DevNonce)
	if devSess.NwkSKey != netSess.NwkSKey || devSess.AppSKey != netSess.AppSKey {
		t.Fatal("session keys disagree")
	}
	if devSess.NwkSKey == devSess.AppSKey {
		t.Fatal("NwkSKey must differ from AppSKey")
	}

	// And a data frame flows between them.
	f := &DataFrame{MType: MTypeUnconfirmedUp, DevAddr: devSess.DevAddr, FCnt: 0, FPort: 1, FRMPayload: []byte("joined")}
	data, err := f.Encode(devSess)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeData(netSess, data, Uplink, 0); err != nil {
		t.Fatal(err)
	}
}

func TestJoinRequestTamperRejected(t *testing.T) {
	var key [16]byte
	key[3] = 9
	req := &JoinRequest{DevNonce: 1}
	phy := req.Encode(key)
	phy[2] ^= 1
	if _, err := DecodeJoinRequest(key, phy); err == nil {
		t.Error("tampered join-request accepted")
	}
}

func TestJoinAcceptWrongKeyRejected(t *testing.T) {
	var k1, k2 [16]byte
	k2[0] = 1
	accept := &JoinAccept{AppNonce: 5, NetID: 6, DevAddr: 7}
	phy := accept.Encode(k1)
	if _, err := DecodeJoinAccept(k2, phy); err == nil {
		t.Error("wrong AppKey accepted")
	}
}

func TestABPSessionSkipsJoin(t *testing.T) {
	var nwk, app [16]byte
	nwk[0], app[0] = 1, 2
	s := NewABPSession(0x11223344, nwk, app)
	if s.DevAddr != 0x11223344 {
		t.Error("ABP address not set")
	}
	f := &DataFrame{MType: MTypeConfirmedUp, DevAddr: s.DevAddr, FCnt: 0, FPort: 1, FRMPayload: []byte("abp")}
	phy, err := f.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeData(s, phy, Uplink, 0); err != nil {
		t.Fatal(err)
	}
}

func TestReceiveWindows(t *testing.T) {
	rx1, rx2 := ReceiveWindows(10 * time.Second)
	if rx1 != 11*time.Second || rx2 != 12*time.Second {
		t.Errorf("windows = %v, %v", rx1, rx2)
	}
}

func TestMTypeStrings(t *testing.T) {
	if MTypeJoinRequest.String() != "join-request" || MTypeConfirmedUp.String() != "confirmed-up" {
		t.Error("mtype names wrong")
	}
}
