package dsp

import (
	"math"
	"testing"

	"github.com/uwsdr/tinysdr/internal/iq"
)

func TestFFTPlanMatchesFFT(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 256, 1024} {
		plan := NewFFTPlan(n)
		if plan.Size() != n {
			t.Fatalf("plan size = %d, want %d", plan.Size(), n)
		}
		x := randomSamples(n, int64(n))
		want := naiveDFT(x)
		got := x.Clone()
		plan.Transform(got)
		for i := range want {
			if d := got[i] - want[i]; math.Hypot(real(d), imag(d)) > 1e-6*float64(n) {
				t.Fatalf("n=%d bin %d: got %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTPlanInverseRoundTrip(t *testing.T) {
	plan := NewFFTPlan(256)
	x := randomSamples(256, 9)
	y := x.Clone()
	plan.Transform(y)
	plan.Inverse(y)
	for i := range x {
		if d := y[i] - x[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("round trip bin %d: got %v, want %v", i, y[i], x[i])
		}
	}
}

func TestFFTPlanRejectsWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Transform on mismatched length must panic")
		}
	}()
	NewFFTPlan(64).Transform(make(iq.Samples, 32))
}

func TestNewFFTPlanRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFFTPlan(12) must panic")
		}
	}()
	NewFFTPlan(12)
}

func TestPlanFFTShared(t *testing.T) {
	if PlanFFT(128) != PlanFFT(128) {
		t.Error("PlanFFT must return the cached plan")
	}
}

// TestFFTPlanTransformZeroAllocs pins the hot-path contract: a planned
// transform performs zero heap allocations.
func TestFFTPlanTransformZeroAllocs(t *testing.T) {
	plan := NewFFTPlan(256)
	x := randomSamples(256, 3)
	if n := testing.AllocsPerRun(100, func() { plan.Transform(x) }); n != 0 {
		t.Errorf("FFTPlan.Transform allocates %.0f times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { plan.Inverse(x) }); n != 0 {
		t.Errorf("FFTPlan.Inverse allocates %.0f times per op, want 0", n)
	}
}

// TestDechirpTransformIntoMatchesUnfused pins the fused kernel's contract:
// dechirping while scattering into bit-reversed order and then running the
// butterflies is bit-identical to the unfused DechirpInto → Transform
// pipeline, for every OSR the demodulator uses and for both chirp slopes.
func TestDechirpTransformIntoMatchesUnfused(t *testing.T) {
	for _, osr := range []int{1, 2, 4} {
		g := ChirpGen{SF: 8, OSR: osr}
		plan := NewFFTPlan(g.SymbolLen())
		x := randomSamples(g.SymbolLen(), int64(17*osr))
		for _, ref := range []iq.Samples{g.Upchirp(0), g.Downchirp()} {
			want := Dechirp(x, ref)
			plan.Transform(want)
			got := plan.DechirpTransformInto(make(iq.Samples, len(x)), x, ref)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("OSR %d bin %d: fused %v != unfused %v", osr, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDechirpTransformIntoRejectsWrongLengths(t *testing.T) {
	plan := NewFFTPlan(64)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched dst length must panic")
		}
	}()
	plan.DechirpTransformInto(make(iq.Samples, 32), make(iq.Samples, 64), make(iq.Samples, 64))
}

// TestFoldPeakIntoMatchesUnfused pins the other fused kernel: one
// FoldPeakInto pass must reproduce MagnitudesInto → FoldBinsInto → the
// sequential peak/total scan bit for bit, at OSR 1 (no folding) and above.
func TestFoldPeakIntoMatchesUnfused(t *testing.T) {
	for _, osr := range []int{1, 2, 4} {
		g := ChirpGen{SF: 8, OSR: osr}
		x := randomSamples(g.SymbolLen(), int64(5*osr))
		mags := Magnitudes(x)
		wantFold := FoldBins(mags, g.NumChips())
		var wantSum, wantPeak float64
		wantBin := 0
		for k, p := range wantFold {
			wantSum += p
			if p > wantPeak {
				wantPeak, wantBin = p, k
			}
		}
		gotFold := make([]float64, g.NumChips())
		bin, peak, sum := FoldPeakInto(gotFold, x)
		if bin != wantBin || peak != wantPeak || sum != wantSum {
			t.Fatalf("OSR %d: fused (%d, %v, %v) != unfused (%d, %v, %v)",
				osr, bin, peak, sum, wantBin, wantPeak, wantSum)
		}
		for i := range wantFold {
			if gotFold[i] != wantFold[i] {
				t.Fatalf("OSR %d folded bin %d: %v != %v", osr, i, gotFold[i], wantFold[i])
			}
		}
	}
}

// TestFusedKernelsZeroAllocs pins the fused kernels to the same
// zero-allocation contract as the unfused Into variants.
func TestFusedKernelsZeroAllocs(t *testing.T) {
	g := ChirpGen{SF: 8, OSR: 2}
	plan := NewFFTPlan(g.SymbolLen())
	x := randomSamples(g.SymbolLen(), 5)
	ref := g.Upchirp(0)
	de := make(iq.Samples, len(x))
	folded := make([]float64, g.NumChips())
	if n := testing.AllocsPerRun(50, func() { plan.DechirpTransformInto(de, x, ref) }); n != 0 {
		t.Errorf("DechirpTransformInto allocates %.0f times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { FoldPeakInto(folded, de) }); n != 0 {
		t.Errorf("FoldPeakInto allocates %.0f times per op, want 0", n)
	}
}

func TestIntoVariantsMatchAllocating(t *testing.T) {
	g := ChirpGen{SF: 8, OSR: 2}
	x := randomSamples(g.SymbolLen(), 5)
	ref := g.Upchirp(0)

	want := Dechirp(x, ref)
	got := make(iq.Samples, len(x))
	DechirpInto(got, x, ref)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DechirpInto bin %d: %v != %v", i, got[i], want[i])
		}
	}

	wantM := Magnitudes(x)
	gotM := MagnitudesInto(make([]float64, len(x)), x)
	for i := range wantM {
		if gotM[i] != wantM[i] {
			t.Fatalf("MagnitudesInto bin %d: %v != %v", i, gotM[i], wantM[i])
		}
	}

	wantF := FoldBins(wantM, g.NumChips())
	gotF := FoldBinsInto(make([]float64, g.NumChips()), wantM)
	for i := range wantF {
		if gotF[i] != wantF[i] {
			t.Fatalf("FoldBinsInto bin %d: %v != %v", i, gotF[i], wantF[i])
		}
	}
}

func TestDSPIntoZeroAllocs(t *testing.T) {
	g := ChirpGen{SF: 8, OSR: 2}
	x := randomSamples(g.SymbolLen(), 5)
	ref := g.Upchirp(0)
	de := make(iq.Samples, len(x))
	mags := make([]float64, len(x))
	folded := make([]float64, g.NumChips())
	fir := NewLowpass(14, 0.2)
	filt := make(iq.Samples, len(x))

	cases := map[string]func(){
		"DechirpInto":    func() { DechirpInto(de, x, ref) },
		"MagnitudesInto": func() { MagnitudesInto(mags, x) },
		"FoldBinsInto":   func() { FoldBinsInto(folded, mags) },
		"FIR.FilterInto": func() { fir.FilterInto(filt, x) },
	}
	for name, fn := range cases {
		if n := testing.AllocsPerRun(50, fn); n != 0 {
			t.Errorf("%s allocates %.0f times per op, want 0", name, n)
		}
	}
}

func TestFilterIntoMatchesFilter(t *testing.T) {
	fir := NewLowpass(14, 0.2)
	x := randomSamples(300, 11)
	want := fir.Filter(x)
	got := fir.FilterInto(make(iq.Samples, len(x)), x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FilterInto sample %d: %v != %v", i, got[i], want[i])
		}
	}

	xr := make([]float64, 300)
	for i := range xr {
		xr[i] = real(x[i])
	}
	wantR := fir.FilterReal(xr)
	gotR := fir.FilterRealInto(make([]float64, len(xr)), xr)
	for i := range wantR {
		if gotR[i] != wantR[i] {
			t.Fatalf("FilterRealInto sample %d: %v != %v", i, gotR[i], wantR[i])
		}
	}
}

// TestDiscriminatorMatchesUnfusedAndChunks pins the fused FIR+FM kernel:
// the one-pass discriminator must reproduce FilterInto followed by phase
// differentiation bit for bit, and incremental Extend calls must be exact
// prefixes of the full pass regardless of chunk boundaries.
func TestDiscriminatorMatchesUnfusedAndChunks(t *testing.T) {
	fir := NewLowpass(17, 0.14)
	x := randomSamples(500, 23)

	// Unfused reference: filter, then differentiate phase.
	filt := fir.Filter(x)
	want := make([]float64, len(x))
	for i := 1; i < len(filt); i++ {
		p := filt[i-1]
		v := filt[i] * complex(real(p), -imag(p))
		want[i] = math.Atan2(imag(v), real(v))
	}

	d := NewDiscriminator(fir)
	got := d.DiscriminateInto(make([]float64, len(x)), x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fused sample %d: %v != %v", i, got[i], want[i])
		}
	}

	// Chunked: ragged Extend boundaries must not change a single value.
	chunked := make([]float64, len(x))
	d.Reset()
	for _, upto := range []int{1, 7, 64, 65, 300, 499, 500, 600} {
		d.ExtendInto(chunked, x, upto)
	}
	if d.Pos() != len(x) {
		t.Fatalf("Pos() = %d after full extension, want %d", d.Pos(), len(x))
	}
	for i := range want {
		if chunked[i] != want[i] {
			t.Fatalf("chunked sample %d: %v != %v", i, chunked[i], want[i])
		}
	}

	if n := testing.AllocsPerRun(20, func() {
		d.Reset()
		d.ExtendInto(chunked, x, len(x))
	}); n != 0 {
		t.Errorf("Discriminator allocates %.0f times per pass, want 0", n)
	}
}

func BenchmarkFFTPlanTransform(b *testing.B) {
	plan := NewFFTPlan(256)
	x := randomSamples(256, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Transform(x)
	}
}

func BenchmarkFFTGlobalEntry(b *testing.B) {
	x := randomSamples(256, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
