package dsp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/uwsdr/tinysdr/internal/iq"
)

func randSamples(seed int64, n int) iq.Samples {
	rng := rand.New(rand.NewSource(seed))
	x := make(iq.Samples, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// TestWelchStreamMatchesEstimateInto pins the chunking-invariance
// contract: any chunk boundaries produce the same bits as the one-shot
// estimate, for inputs shorter than a window, exactly one window, and
// many overlapping windows.
func TestWelchStreamMatchesEstimateInto(t *testing.T) {
	const fft = 64
	plan := NewWelchPlan(fft)
	stream := plan.Stream()
	ref := make([]float64, fft)
	got := make([]float64, fft)
	for _, total := range []int{1, 17, fft - 1, fft, fft + 1, fft * 3 / 2, fft * 4, 1000} {
		x := randSamples(int64(total), total)
		plan.EstimateInto(ref, x, 4e6)
		for _, chunk := range []int{1, 5, fft / 2, fft, fft*2 + 3} {
			stream.Reset()
			for lo := 0; lo < total; lo += chunk {
				hi := min(lo+chunk, total)
				stream.Extend(x[lo:hi])
			}
			sp := stream.FinishInto(got, 4e6)
			for i := range ref {
				if math.Float64bits(ref[i]) != math.Float64bits(got[i]) {
					t.Fatalf("total %d chunk %d: bin %d %g != %g", total, chunk, i, got[i], ref[i])
				}
			}
			if sp.SampleRate != 4e6 {
				t.Fatalf("sample rate %g", sp.SampleRate)
			}
		}
	}
}

// TestWelchStreamReusable: Reset must fully clear absorbed state, and a
// Finish mid-stream must not corrupt later extension.
func TestWelchStreamReusable(t *testing.T) {
	const fft = 32
	plan := NewWelchPlan(fft)
	stream := plan.Stream()
	ref := make([]float64, fft)
	got := make([]float64, fft)

	x := randSamples(7, 300)
	// Pollute, then reset, then re-estimate.
	stream.Extend(randSamples(8, 123))
	stream.FinishInto(got, 1e6)
	stream.Reset()
	// Render an early prefix, keep extending, and check the full result.
	stream.Extend(x[:100])
	stream.FinishInto(got, 1e6)
	stream.Extend(x[100:])
	stream.FinishInto(got, 1e6)
	plan.EstimateInto(ref, x, 1e6)
	for i := range ref {
		if math.Float64bits(ref[i]) != math.Float64bits(got[i]) {
			t.Fatalf("bin %d: %g != %g after reuse", i, got[i], ref[i])
		}
	}

	// The short-input render path must also be non-destructive.
	stream.Reset()
	stream.Extend(x[:10])
	stream.FinishInto(got, 1e6)
	stream.Extend(x[10:])
	stream.FinishInto(got, 1e6)
	for i := range ref {
		if math.Float64bits(ref[i]) != math.Float64bits(got[i]) {
			t.Fatalf("bin %d: %g != %g after short-path render", i, got[i], ref[i])
		}
	}
}

func TestWelchStreamFinishIntoPanicsOnBadDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for wrong dst length")
		}
	}()
	NewWelchPlan(64).Stream().FinishInto(make([]float64, 63), 1e6)
}

// TestWelchStreamZeroAllocs pins the hot-path contract: after
// construction, Extend and FinishInto never touch the heap.
func TestWelchStreamZeroAllocs(t *testing.T) {
	const fft = 128
	plan := NewWelchPlan(fft)
	stream := plan.Stream()
	x := randSamples(9, 4*fft)
	dst := make([]float64, fft)
	n := testing.AllocsPerRun(50, func() {
		stream.Reset()
		for lo := 0; lo < len(x); lo += 96 {
			stream.Extend(x[lo:min(lo+96, len(x))])
		}
		stream.FinishInto(dst, 4e6)
	})
	if n != 0 {
		t.Fatalf("WelchStream allocates %.0f times per estimate, want 0", n)
	}
}

func BenchmarkWelchStreamExtendFinish(b *testing.B) {
	const fft = 256
	plan := NewWelchPlan(fft)
	stream := plan.Stream()
	x := randSamples(11, 8*fft)
	dst := make([]float64, fft)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Reset()
		for lo := 0; lo < len(x); lo += fft / 2 {
			stream.Extend(x[lo : lo+fft/2])
		}
		stream.FinishInto(dst, 4e6)
	}
}
