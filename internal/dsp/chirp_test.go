package dsp

import (
	"math"
	"testing"

	"github.com/uwsdr/tinysdr/internal/iq"
)

func TestChirpSymbolLength(t *testing.T) {
	for sf := 6; sf <= 12; sf++ {
		for _, osr := range []int{1, 2, 4} {
			g := ChirpGen{SF: sf, OSR: osr}
			want := (1 << sf) * osr
			if got := len(g.Upchirp(0)); got != want {
				t.Errorf("SF%d OSR%d: upchirp len %d, want %d", sf, osr, got, want)
			}
			if got := len(g.Downchirp()); got != want {
				t.Errorf("SF%d OSR%d: downchirp len %d, want %d", sf, osr, got, want)
			}
			if got := len(g.QuarterDownchirp()); got != want/4 {
				t.Errorf("SF%d OSR%d: quarter downchirp len %d, want %d", sf, osr, got, want/4)
			}
		}
	}
}

func TestChirpConstantEnvelope(t *testing.T) {
	g := ChirpGen{SF: 8, OSR: 1}
	s := g.Upchirp(37)
	// CSS is constant-envelope: every sample magnitude ~1 (13-bit LUT).
	for i, x := range s {
		mag := math.Hypot(real(x), imag(x))
		if math.Abs(mag-1) > 0.01 {
			t.Fatalf("sample %d magnitude %v deviates from constant envelope", i, mag)
		}
	}
}

func TestChirpValidate(t *testing.T) {
	if err := (ChirpGen{SF: 8, OSR: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, g := range []ChirpGen{{SF: 5, OSR: 1}, {SF: 13, OSR: 1}, {SF: 8, OSR: 3}, {SF: 8, OSR: 0}} {
		if err := g.Validate(); err == nil {
			t.Errorf("config %+v accepted, want error", g)
		}
	}
}

// demodShift recovers the cyclic shift of an upchirp via dechirp + FFT,
// exactly as the tinySDR demodulator does.
func demodShift(g ChirpGen, sym iq.Samples) int {
	de := Dechirp(sym, g.Upchirp(0))
	FFT(de)
	folded := FoldBins(Magnitudes(de), g.NumChips())
	best, bestP := 0, 0.0
	for k, p := range folded {
		if p > bestP {
			best, bestP = k, p
		}
	}
	return best
}

func TestDechirpRecoversAllShiftsOSR1(t *testing.T) {
	g := ChirpGen{SF: 7, OSR: 1}
	for k := 0; k < g.NumChips(); k++ {
		if got := demodShift(g, g.Upchirp(k)); got != k {
			t.Fatalf("shift %d demodulated as %d", k, got)
		}
	}
}

func TestDechirpRecoversShiftsOSR2(t *testing.T) {
	g := ChirpGen{SF: 8, OSR: 2}
	for _, k := range []int{0, 1, 17, 100, 128, 200, 255} {
		if got := demodShift(g, g.Upchirp(k)); got != k {
			t.Fatalf("OSR2 shift %d demodulated as %d", k, got)
		}
	}
}

func TestDechirpPeakDominance(t *testing.T) {
	// After dechirping, the peak bin must hold nearly all symbol energy.
	g := ChirpGen{SF: 9, OSR: 1}
	de := Dechirp(g.Upchirp(211), g.Upchirp(0))
	FFT(de)
	mags := Magnitudes(de)
	peak, peakP := PeakBin(de)
	if peak != 211 {
		t.Fatalf("peak at %d, want 211", peak)
	}
	var total float64
	for _, m := range mags {
		total += m
	}
	if peakP/total < 0.98 {
		t.Errorf("peak holds %.3f of energy, want > 0.98", peakP/total)
	}
}

func TestUpDownChirpDiscrimination(t *testing.T) {
	// The sync detector compares FFT peaks after multiplying by both an
	// upchirp and a downchirp reference; the matching slope must win big.
	g := ChirpGen{SF: 8, OSR: 1}
	up := g.Upchirp(0)
	down := g.Downchirp()

	deMatch := Dechirp(up, g.Upchirp(0))
	FFT(deMatch)
	_, matchP := PeakBin(deMatch)

	deCross := Dechirp(down, g.Upchirp(0))
	FFT(deCross)
	_, crossP := PeakBin(deCross)

	if iq.DB(matchP/crossP) < 15 {
		t.Errorf("up/down discrimination margin %.1f dB, want > 15 dB", iq.DB(matchP/crossP))
	}
}

func TestDifferentSlopeChirpsQuasiOrthogonal(t *testing.T) {
	// Dechirping an SF8 chirp with an SF9 reference (different slope) must
	// spread its energy: the peak should be far below the matched case.
	// This is the orthogonality property §6 of the paper builds on.
	g8 := ChirpGen{SF: 8, OSR: 2} // BW b over 256 chips
	g9 := ChirpGen{SF: 9, OSR: 2} // same sample rate, different slope

	matched := Dechirp(g9.Upchirp(0), g9.Upchirp(0))
	FFT(matched)
	_, matchP := PeakBin(matched)

	x9 := g9.Upchirp(0)
	cross := Dechirp(x9[:g8.SymbolLen()], g8.Upchirp(0))
	FFT(cross)
	_, crossP := PeakBin(cross)

	// Normalize for FFT length difference (energy scales with N^2 in peak).
	ratio := iq.DB(matchP / (crossP * 4))
	if ratio < 15 {
		t.Errorf("cross-slope suppression %.1f dB, want > 15 dB", ratio)
	}
}

func TestDechirpLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dechirp(make(iq.Samples, 8), make(iq.Samples, 16))
}

func TestFoldBinsIdentityAtOSR1(t *testing.T) {
	in := []float64{1, 2, 3, 4}
	out := FoldBins(in, 4)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("FoldBins changed values at OSR=1: %v", out)
		}
	}
}

func TestFoldBinsMergesAliases(t *testing.T) {
	// S=8, N=4: bin k merges with bin (8-4+k) mod 8 = k+4.
	in := []float64{1, 2, 3, 4, 10, 20, 30, 40}
	out := FoldBins(in, 4)
	want := []float64{11, 22, 33, 44}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("FoldBins = %v, want %v", out, want)
		}
	}
}

func BenchmarkChirpUpSF8(b *testing.B) {
	g := ChirpGen{SF: 8, OSR: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Upchirp(i & 255)
	}
}

func BenchmarkDechirpFFTSF8(b *testing.B) {
	g := ChirpGen{SF: 8, OSR: 1}
	sym := g.Upchirp(99)
	ref := g.Upchirp(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		de := Dechirp(sym, ref)
		FFT(de)
	}
}
