package dsp

import (
	"math"
	"testing"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// TestSFDRGuardWrapsCircularly pins the edge-wrap fix: a spur adjacent to a
// peak across the array boundary sits inside the circular guard band and
// must not count as the worst spur (the old linear guard clipped at the
// edge and reported it).
func TestSFDRGuardWrapsCircularly(t *testing.T) {
	s := Spectrum{SampleRate: 1, PowerDBm: make([]float64, 16)}
	for i := range s.PowerDBm {
		s.PowerDBm[i] = -100
	}
	s.PowerDBm[0] = 0   // peak at the first bin (-Fs/2)
	s.PowerDBm[15] = -3 // skirt bin, 1 away across the wrap
	s.PowerDBm[14] = -6 // skirt bin, 2 away across the wrap
	s.PowerDBm[8] = -60 // the genuine spur
	if got := s.SFDR(2); math.Abs(got-60) > 1e-12 {
		t.Errorf("SFDR(2) = %.1f dB, want 60 (wrapped skirt bins excluded)", got)
	}
	// With no guard the skirt bin is legitimately the worst spur.
	if got := s.SFDR(0); math.Abs(got-3) > 1e-12 {
		t.Errorf("SFDR(0) = %.1f dB, want 3", got)
	}
}

func TestSFDRGuardCoversEverything(t *testing.T) {
	s := Spectrum{SampleRate: 1, PowerDBm: []float64{0, -10, -20, -30}}
	if got := s.SFDR(2); !math.IsInf(got, 1) {
		t.Errorf("SFDR with guard covering all bins = %v, want +Inf", got)
	}
}

// TestWelchShortInputCalibration pins the populated-fraction fix: a
// bin-aligned tone occupying half a segment must still read its true power.
// The old full-window coherent gain under-read this capture by ~6 dB.
func TestWelchShortInputCalibration(t *testing.T) {
	x := NewNCO(32.0 / 256).Generate(128)
	iq.Samples(x).ScaleToDBm(-40)
	spec := Welch(x, 256, 1e6)
	_, p := spec.Peak()
	if math.Abs(p-(-40)) > 0.5 {
		t.Errorf("half-segment tone reads %.2f dBm, want -40 +- 0.5", p)
	}
}

func TestWelchPlanMatchesWelch(t *testing.T) {
	x := NewNCO(0.2).Generate(4096)
	iq.Samples(x).ScaleToDBm(-30)
	want := Welch(x, 512, 4e6)
	w := NewWelchPlan(512)
	if w.Size() != 512 {
		t.Fatalf("plan size %d", w.Size())
	}
	dst := make([]float64, 512)
	for round := 0; round < 2; round++ { // scratch reuse must not leak state
		got := w.EstimateInto(dst, x, 4e6)
		for i := range want.PowerDBm {
			if got.PowerDBm[i] != want.PowerDBm[i] {
				t.Fatalf("round %d bin %d: plan %.9f, one-shot %.9f",
					round, i, got.PowerDBm[i], want.PowerDBm[i])
			}
		}
	}
}

func TestWelchPlanZeroAllocs(t *testing.T) {
	w := NewWelchPlan(256)
	dst := make([]float64, 256)
	x := NewNCO(0.1).Generate(2048)
	if allocs := testing.AllocsPerRun(100, func() {
		w.EstimateInto(dst, x, 1e6)
	}); allocs != 0 {
		t.Errorf("EstimateInto allocates %.0f objects/op, want 0", allocs)
	}
}

func TestWelchPlanPanicsOnDstMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWelchPlan(256).EstimateInto(make([]float64, 128), make(iq.Samples, 512), 1e6)
}

func TestNewWelchPlanPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWelchPlan(100)
}

// BenchmarkWelchPlan pins the spectrum-sensing hot path: repeated estimates
// through one plan, no allocation after construction.
func BenchmarkWelchPlan(b *testing.B) {
	x := NewNCO(0.2).Generate(1 << 16)
	w := NewWelchPlan(2048)
	dst := make([]float64, 2048)
	b.SetBytes(int64(len(x) * 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.EstimateInto(dst, x, 4e6)
	}
}

// TestOccupancy pins the threshold semantics: at-or-above counts, and the
// empty spectrum is unoccupied.
func TestOccupancy(t *testing.T) {
	s := Spectrum{SampleRate: 1, PowerDBm: []float64{-100, -90, -80, -80}}
	if got := s.Occupancy(-80); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Occupancy(-80) = %g, want 0.5 (threshold is inclusive)", got)
	}
	if got := s.Occupancy(-70); got != 0 {
		t.Errorf("Occupancy(-70) = %g, want 0", got)
	}
	if got := s.Occupancy(-200); got != 1 {
		t.Errorf("Occupancy(-200) = %g, want 1", got)
	}
	if got := (Spectrum{}).Occupancy(-80); got != 0 {
		t.Errorf("empty spectrum Occupancy = %g, want 0", got)
	}
}

// TestBandPowerDBm integrates a tone's power: the whole band recovers the
// tone, a disjoint band reads the floor, and a band wrapping through
// +-Fs/2 must capture an edge tone whose energy splits across the array
// boundary (the circular-axis convention of the SFDR guard fix).
func TestBandPowerDBm(t *testing.T) {
	const rate = 1e6
	x := NewNCO(0.125).Generate(4096) // +125 kHz tone
	iq.Samples(x).ScaleToDBm(-30)
	s := Welch(x, 256, rate)
	if got := s.BandPowerDBm(100e3, 150e3); math.Abs(got-(-30)) > 0.5 {
		t.Errorf("band around the tone reads %.2f dBm, want -30 +- 0.5", got)
	}
	if got := s.BandPowerDBm(-200e3, -100e3); got > -60 {
		t.Errorf("empty band reads %.2f dBm, want far below the tone", got)
	}

	// Edge tone at ~+Fs/2: its skirt wraps to the bottom of the array.
	e := NewNCO(0.499).Generate(4096)
	iq.Samples(e).ScaleToDBm(-30)
	se := Welch(e, 256, rate)
	wrapped := se.BandPowerDBm(480e3, -480e3) // circular band through the edge
	if math.Abs(wrapped-(-30)) > 0.5 {
		t.Errorf("wrapped band reads %.2f dBm, want -30 +- 0.5", wrapped)
	}
	// The same span read as two linear halves must not beat the wrap
	// (each half alone misses the other skirt).
	hi := se.BandPowerDBm(480e3, 500e3)
	if hi > wrapped {
		t.Errorf("linear upper half %.2f dBm exceeds wrapped band %.2f dBm", hi, wrapped)
	}
}

func TestBandPowerDBmNoBins(t *testing.T) {
	s := Spectrum{SampleRate: 1e6, PowerDBm: make([]float64, 16)}
	if got := s.BandPowerDBm(1000, 1001); !math.IsInf(got, -1) {
		t.Errorf("band covering no bin centers = %v, want -Inf", got)
	}
}
