package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// naiveDFT is the O(n^2) reference implementation.
func naiveDFT(x iq.Samples) iq.Samples {
	n := len(x)
	out := make(iq.Samples, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			acc += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = acc
	}
	return out
}

func randomSamples(n int, seed int64) iq.Samples {
	rng := rand.New(rand.NewSource(seed))
	s := make(iq.Samples, n)
	for i := range s {
		s[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return s
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 256} {
		x := randomSamples(n, int64(n))
		want := naiveDFT(x)
		got := x.Clone()
		FFT(got)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-8*float64(n) {
				t.Fatalf("n=%d bin %d: FFT=%v DFT=%v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT(len 12) did not panic")
		}
	}()
	FFT(make(iq.Samples, 12))
}

func TestIFFTInvertsFFT(t *testing.T) {
	for _, n := range []int{4, 128, 1024} {
		x := randomSamples(n, 7)
		y := x.Clone()
		FFT(y)
		IFFT(y)
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d sample %d: round trip %v != %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// sum |x|^2 == (1/N) sum |X|^2 for random inputs.
	f := func(seed int64) bool {
		x := randomSamples(256, seed)
		var tPow float64
		for _, v := range x {
			tPow += real(v)*real(v) + imag(v)*imag(v)
		}
		y := x.Clone()
		FFT(y)
		var fPow float64
		for _, v := range y {
			fPow += real(v)*real(v) + imag(v)*imag(v)
		}
		fPow /= 256
		return math.Abs(tPow-fPow) < 1e-6*math.Max(1, tPow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFFTLinearity(t *testing.T) {
	f := func(seed int64) bool {
		a := randomSamples(128, seed)
		b := randomSamples(128, seed+1)
		sum := make(iq.Samples, 128)
		for i := range sum {
			sum[i] = a[i] + 2*b[i]
		}
		FFT(a)
		FFT(b)
		FFT(sum)
		for i := range sum {
			if cmplx.Abs(sum[i]-(a[i]+2*b[i])) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFFTToneLandsInSingleBin(t *testing.T) {
	n := 512
	bin := 73
	x := make(iq.Samples, n)
	for i := range x {
		ang := 2 * math.Pi * float64(bin) * float64(i) / float64(n)
		x[i] = cmplx.Exp(complex(0, ang))
	}
	FFT(x)
	peak, p := PeakBin(x)
	if peak != bin {
		t.Fatalf("peak at bin %d, want %d", peak, bin)
	}
	if math.Abs(p-float64(n)*float64(n)) > 1e-6*p {
		t.Errorf("peak power %v, want %v", p, n*n)
	}
}

func TestPeakBinEmptyAndFlat(t *testing.T) {
	bin, p := PeakBin(nil)
	if bin != 0 || p != 0 {
		t.Errorf("PeakBin(nil) = %d,%v", bin, p)
	}
	bin, _ = PeakBin(iq.Samples{1, 1, 1})
	if bin != 0 {
		t.Errorf("flat input peak = %d, want first bin", bin)
	}
}

func TestMagnitudes(t *testing.T) {
	m := Magnitudes(iq.Samples{complex(3, 4), 0})
	if m[0] != 25 || m[1] != 0 {
		t.Errorf("Magnitudes = %v, want [25 0]", m)
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for n, want := range map[int]bool{1: true, 2: true, 1024: true, 0: false, -4: false, 12: false, 4096: true} {
		if got := IsPowerOfTwo(n); got != want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", n, got, want)
		}
	}
}

func BenchmarkFFT256(b *testing.B)  { benchFFT(b, 256) }
func BenchmarkFFT4096(b *testing.B) { benchFFT(b, 4096) }

func benchFFT(b *testing.B, n int) {
	x := randomSamples(n, 1)
	buf := make(iq.Samples, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		FFT(buf)
	}
}
