package dsp

import (
	"fmt"
	"math"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// FIR is a finite-impulse-response filter with real taps, matching the
// filter structures synthesized on the tinySDR FPGA (the LoRa demodulator
// uses a 14-tap low-pass instance).
type FIR struct {
	taps []float64
}

// NewFIR returns a filter with the given taps. It panics on an empty tap
// set, which would be a synthesis error on hardware.
func NewFIR(taps []float64) *FIR {
	if len(taps) == 0 {
		panic("dsp: FIR requires at least one tap")
	}
	t := make([]float64, len(taps))
	copy(t, taps)
	return &FIR{taps: t}
}

// NewLowpass designs an n-tap windowed-sinc low-pass filter with the given
// normalized cutoff (cycles/sample, 0 < cutoff < 0.5) using a Hamming window,
// normalized to unity DC gain.
func NewLowpass(n int, cutoff float64) *FIR {
	if n < 1 {
		panic("dsp: lowpass needs at least one tap")
	}
	if cutoff <= 0 || cutoff >= 0.5 {
		panic(fmt.Sprintf("dsp: lowpass cutoff %v out of range (0, 0.5)", cutoff))
	}
	taps := make([]float64, n)
	mid := float64(n-1) / 2
	var sum float64
	for i := range taps {
		x := float64(i) - mid
		var v float64
		if x == 0 {
			v = 2 * cutoff
		} else {
			v = math.Sin(2*math.Pi*cutoff*x) / (math.Pi * x)
		}
		v *= 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1)) // Hamming
		taps[i] = v
		sum += v
	}
	for i := range taps {
		taps[i] /= sum
	}
	return &FIR{taps: taps}
}

// Taps returns a copy of the filter taps.
func (f *FIR) Taps() []float64 {
	t := make([]float64, len(f.taps))
	copy(t, f.taps)
	return t
}

// Len returns the number of taps.
func (f *FIR) Len() int { return len(f.taps) }

// FilterInto convolves x with the taps into dst and returns dst
// (zero-padded edges, linear-phase alignment to the group delay).
// len(dst) must equal len(x); dst must not alias x. It performs no
// allocation — the hot-path entry the demodulator scratch arenas use.
func (f *FIR) FilterInto(dst, x iq.Samples) iq.Samples {
	n := len(x)
	if len(dst) != n {
		panic(fmt.Sprintf("dsp: FIR dst length mismatch %d != %d", len(dst), n))
	}
	delay := (len(f.taps) - 1) / 2
	for i := 0; i < n; i++ {
		// Real taps: accumulate the I and Q rails separately so each tap
		// costs two real multiplies instead of a full complex product.
		// The per-rail sums round exactly as the complex accumulator did.
		var re, im float64
		// Clamp the tap range so the inner loop carries no bounds test.
		kLo := i + delay - (n - 1)
		if kLo < 0 {
			kLo = 0
		}
		kHi := i + delay
		if kHi > len(f.taps)-1 {
			kHi = len(f.taps) - 1
		}
		for k := kLo; k <= kHi; k++ {
			v := x[i+delay-k]
			t := f.taps[k]
			re += real(v) * t
			im += imag(v) * t
		}
		dst[i] = complex(re, im)
	}
	return dst
}

// Filter convolves x with the taps and returns a buffer of the same length
// (zero-padded edges, linear-phase alignment to the group delay).
func (f *FIR) Filter(x iq.Samples) iq.Samples {
	return f.FilterInto(make(iq.Samples, len(x)), x)
}

// FilterRealInto convolves a real-valued sequence with the taps into dst,
// with the same alignment semantics as FilterInto.
func (f *FIR) FilterRealInto(dst, x []float64) []float64 {
	n := len(x)
	if len(dst) != n {
		panic(fmt.Sprintf("dsp: FIR dst length mismatch %d != %d", len(dst), n))
	}
	delay := (len(f.taps) - 1) / 2
	for i := 0; i < n; i++ {
		var acc float64
		kLo := i + delay - (n - 1)
		if kLo < 0 {
			kLo = 0
		}
		kHi := i + delay
		if kHi > len(f.taps)-1 {
			kHi = len(f.taps) - 1
		}
		for k := kLo; k <= kHi; k++ {
			acc += x[i+delay-k] * f.taps[k]
		}
		dst[i] = acc
	}
	return dst
}

// FilterReal convolves a real-valued sequence with the taps, with the same
// alignment semantics as Filter.
func (f *FIR) FilterReal(x []float64) []float64 {
	return f.FilterRealInto(make([]float64, len(x)), x)
}

// Response returns the filter's power gain in dB at the given normalized
// frequency (cycles/sample).
func (f *FIR) Response(freq float64) float64 {
	var re, im float64
	for k, tap := range f.taps {
		ang := -2 * math.Pi * freq * float64(k)
		re += tap * math.Cos(ang)
		im += tap * math.Sin(ang)
	}
	return iq.DB(re*re + im*im)
}

// Decimate low-pass filters x and keeps every factor-th sample. It models
// the FPGA front-end that reduces the radio's 4 MHz stream to the protocol
// bandwidth. factor must be >= 1.
func Decimate(x iq.Samples, factor int) iq.Samples {
	if factor < 1 {
		panic("dsp: decimation factor must be >= 1")
	}
	if factor == 1 {
		return x.Clone()
	}
	lp := NewLowpass(8*factor+1, 0.45/float64(factor))
	filtered := lp.Filter(x)
	out := make(iq.Samples, 0, len(x)/factor+1)
	for i := 0; i < len(filtered); i += factor {
		out = append(out, filtered[i])
	}
	return out
}

// NewGaussian designs the Gaussian pulse-shaping filter used by the BLE GFSK
// modulator: bandwidth-time product bt, sps samples per symbol, truncated to
// span symbols, normalized to unity DC gain.
func NewGaussian(bt float64, sps, span int) *FIR {
	if bt <= 0 || sps < 1 || span < 1 {
		panic("dsp: invalid Gaussian filter parameters")
	}
	n := span*sps + 1
	taps := make([]float64, n)
	mid := float64(n-1) / 2
	// Standard Gaussian pulse: h(t) = sqrt(2*pi/ln2)*B*exp(-2*pi^2*B^2*t^2/ln2)
	// with B = bt / Tsym and t in symbol units.
	alpha := 2 * math.Pi * math.Pi * bt * bt / math.Ln2
	var sum float64
	for i := range taps {
		t := (float64(i) - mid) / float64(sps) // in symbols
		taps[i] = math.Exp(-alpha * t * t)
		sum += taps[i]
	}
	for i := range taps {
		taps[i] /= sum
	}
	return &FIR{taps: taps}
}
