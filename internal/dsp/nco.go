package dsp

import (
	"math"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// The tinySDR FPGA generates carriers and chirps with a phase accumulator
// addressing sin/cos lookup tables (LoRa Backscatter architecture, cited as
// [67] in the paper). We model the same datapath: a 32-bit phase accumulator
// whose top lutAddrBits bits address a table of 13-bit samples.
const (
	lutAddrBits = 10
	lutSize     = 1 << lutAddrBits
	lutScale    = 4095 // 13-bit signed amplitude
)

var sinLUT, cosLUT [lutSize]float64

func init() {
	for i := 0; i < lutSize; i++ {
		ang := 2 * math.Pi * float64(i) / lutSize
		// Quantize the table entries to the 13-bit DAC grid.
		sinLUT[i] = math.Round(math.Sin(ang)*lutScale) / lutScale
		cosLUT[i] = math.Round(math.Cos(ang)*lutScale) / lutScale
	}
}

// lutSample returns the quantized complex exponential for a 32-bit phase word.
func lutSample(phase uint32) complex128 {
	idx := phase >> (32 - lutAddrBits)
	return complex(cosLUT[idx], sinLUT[idx])
}

// NCO is a numerically controlled oscillator: the FPGA single-tone modulator
// used for the Fig. 8 spectrum measurement, and the phase stage of the chirp
// generator.
type NCO struct {
	phase uint32
	step  uint32
}

// NewNCO returns an NCO producing the given normalized frequency
// (cycles/sample, -0.5 <= f < 0.5).
func NewNCO(freq float64) *NCO {
	n := &NCO{}
	n.SetFrequency(freq)
	return n
}

// SetFrequency retunes the oscillator without resetting phase, as the
// hardware does during frequency hopping.
func (n *NCO) SetFrequency(freq float64) {
	n.step = uint32(int32(math.Round(freq * (1 << 32))))
}

// Next returns the next sample and advances the phase accumulator.
func (n *NCO) Next() complex128 {
	s := lutSample(n.phase)
	n.phase += n.step
	return s
}

// Generate produces count samples into a new buffer.
func (n *NCO) Generate(count int) iq.Samples {
	out := make(iq.Samples, count)
	for i := range out {
		out[i] = n.Next()
	}
	return out
}

// Mix multiplies x by the oscillator output in place (frequency translation)
// and returns x.
func (n *NCO) Mix(x iq.Samples) iq.Samples {
	for i := range x {
		x[i] *= n.Next()
	}
	return x
}
