// Package dsp implements the signal-processing blocks that run on the
// tinySDR FPGA: an FFT (the Lattice IP core in the paper), FIR filters, a
// phase-accumulator NCO with sin/cos lookup tables, chirp generation, and
// spectral estimation for the evaluation harness.
//
// All blocks operate on iq.Samples and are deterministic.
//
// The transform entry points come in two flavors: the package-level
// functions (FFT, Magnitudes, Dechirp, FoldBins) allocate their outputs and
// are convenient for tests and one-shot use, while FFTPlan and the *Into
// variants write into caller-provided scratch and perform zero heap
// allocations in steady state — the contract the demodulator hot paths rely
// on (see PERFORMANCE.md).
package dsp

import (
	"fmt"
	"math"
	"sync"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// FFTPlan holds the precomputed twiddle factors and bit-reversal
// permutation for one transform size — the radix-2 datapath the FPGA's FFT
// core instantiates per configuration. A plan is immutable after
// construction and safe for concurrent use; Transform itself mutates only
// its argument and performs no locking and no allocation.
type FFTPlan struct {
	n   int
	w   []complex128 // n/2 twiddles e^{-2πik/n}
	rev []int32      // bit-reversal permutation, rev[i] < i entries swap
}

// NewFFTPlan returns a plan for size n. n must be a positive power of two;
// NewFFTPlan panics otherwise, mirroring the fixed-size FFT core configured
// on the FPGA.
func NewFFTPlan(n int) *FFTPlan {
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT size %d is not a power of two", n))
	}
	p := &FFTPlan{n: n}
	p.w = make([]complex128, n/2)
	for i := range p.w {
		ang := -2 * math.Pi * float64(i) / float64(n)
		p.w[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	p.rev = make([]int32, n)
	for i, j := 0, 0; i < n; i++ {
		p.rev[i] = int32(j)
		mask := n >> 1
		for j&mask != 0 {
			j &^= mask
			mask >>= 1
		}
		j |= mask
	}
	return p
}

// Size returns the transform size the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

// Transform computes the in-place radix-2 decimation-in-time FFT of x.
// len(x) must equal the plan size. It performs no allocation.
func (p *FFTPlan) Transform(x iq.Samples) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("dsp: FFT input length %d != plan size %d", len(x), n))
	}
	if n == 1 {
		return
	}
	for i, r := range p.rev {
		if int(r) > i {
			x[i], x[r] = x[r], x[i]
		}
	}
	w := p.w
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				t := w[k*step] * x[start+k+half]
				u := x[start+k]
				x[start+k] = u + t
				x[start+k+half] = u - t
			}
		}
	}
}

// Inverse computes the in-place inverse FFT of x with 1/N normalization.
// It performs no allocation.
func (p *FFTPlan) Inverse(x iq.Samples) {
	if len(x) != p.n {
		panic(fmt.Sprintf("dsp: IFFT input length %d != plan size %d", len(x), p.n))
	}
	for i := range x {
		x[i] = complex(real(x[i]), -imag(x[i]))
	}
	p.Transform(x)
	inv := 1 / float64(p.n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, -imag(x[i])*inv)
	}
}

// planCache holds shared plans for the package-level FFT/IFFT entry points.
// sync.Map gives a lock-free fast path once a size has been planned.
var planCache sync.Map // int -> *FFTPlan

// PlanFFT returns a shared immutable plan for size n, creating it on first
// use. Hot paths that own their buffer sizes should hold their own plan
// from NewFFTPlan instead; this cache exists for the convenience entry
// points below.
func PlanFFT(n int) *FFTPlan {
	if p, ok := planCache.Load(n); ok {
		return p.(*FFTPlan)
	}
	p, _ := planCache.LoadOrStore(n, NewFFTPlan(n))
	return p.(*FFTPlan)
}

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the in-place radix-2 decimation-in-time FFT of x.
// len(x) must be a positive power of two; FFT panics otherwise, mirroring
// the fixed-size FFT core configured on the FPGA.
func FFT(x iq.Samples) { PlanFFT(len(x)).Transform(x) }

// IFFT computes the in-place inverse FFT of x with 1/N normalization.
func IFFT(x iq.Samples) { PlanFFT(len(x)).Inverse(x) }

// PeakBin returns the index and squared magnitude of the largest FFT bin.
// It is the Symbol Detector block of the LoRa demodulator (Fig. 6b).
func PeakBin(x iq.Samples) (bin int, power float64) {
	for i, v := range x {
		p := real(v)*real(v) + imag(v)*imag(v)
		if p > power {
			power, bin = p, i
		}
	}
	return bin, power
}

// MagnitudesInto writes the squared magnitude of each element of x into
// dst and returns dst. len(dst) must equal len(x). It performs no
// allocation.
func MagnitudesInto(dst []float64, x iq.Samples) []float64 {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("dsp: magnitudes length mismatch %d != %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return dst
}

// Magnitudes returns the squared magnitude of each element.
func Magnitudes(x iq.Samples) []float64 {
	return MagnitudesInto(make([]float64, len(x)), x)
}
