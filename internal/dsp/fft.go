// Package dsp implements the signal-processing blocks that run on the
// tinySDR FPGA: an FFT (the Lattice IP core in the paper), FIR filters, a
// phase-accumulator NCO with sin/cos lookup tables, chirp generation, and
// spectral estimation for the evaluation harness.
//
// All blocks operate on iq.Samples and are deterministic.
package dsp

import (
	"fmt"
	"math"
	"sync"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// twiddle factor cache, keyed by FFT size.
var (
	twiddleMu    sync.Mutex
	twiddleCache = map[int][]complex128{}
)

func twiddles(n int) []complex128 {
	twiddleMu.Lock()
	defer twiddleMu.Unlock()
	if w, ok := twiddleCache[n]; ok {
		return w
	}
	w := make([]complex128, n/2)
	for i := range w {
		ang := -2 * math.Pi * float64(i) / float64(n)
		w[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	twiddleCache[n] = w
	return w
}

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the in-place radix-2 decimation-in-time FFT of x.
// len(x) must be a positive power of two; FFT panics otherwise, mirroring
// the fixed-size FFT core configured on the FPGA.
func FFT(x iq.Samples) {
	n := len(x)
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT size %d is not a power of two", n))
	}
	if n == 1 {
		return
	}
	bitReverse(x)
	w := twiddles(n)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				t := w[k*step] * x[start+k+half]
				u := x[start+k]
				x[start+k] = u + t
				x[start+k+half] = u - t
			}
		}
	}
}

// IFFT computes the in-place inverse FFT of x with 1/N normalization.
func IFFT(x iq.Samples) {
	n := len(x)
	for i := range x {
		x[i] = complex(real(x[i]), -imag(x[i]))
	}
	FFT(x)
	inv := 1 / float64(n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, -imag(x[i])*inv)
	}
}

func bitReverse(x iq.Samples) {
	n := len(x)
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		mask := n >> 1
		for j&mask != 0 {
			j &^= mask
			mask >>= 1
		}
		j |= mask
	}
}

// PeakBin returns the index and squared magnitude of the largest FFT bin.
// It is the Symbol Detector block of the LoRa demodulator (Fig. 6b).
func PeakBin(x iq.Samples) (bin int, power float64) {
	for i, v := range x {
		p := real(v)*real(v) + imag(v)*imag(v)
		if p > power {
			power, bin = p, i
		}
	}
	return bin, power
}

// Magnitudes returns the squared magnitude of each element.
func Magnitudes(x iq.Samples) []float64 {
	m := make([]float64, len(x))
	for i, v := range x {
		m[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return m
}
