// Package dsp implements the signal-processing blocks that run on the
// tinySDR FPGA: an FFT (the Lattice IP core in the paper), FIR filters, a
// phase-accumulator NCO with sin/cos lookup tables, chirp generation, and
// spectral estimation for the evaluation harness.
//
// All blocks operate on iq.Samples and are deterministic.
//
// The transform entry points come in two flavors: the package-level
// functions (FFT, Magnitudes, Dechirp, FoldBins) allocate their outputs and
// are convenient for tests and one-shot use, while FFTPlan and the *Into
// variants write into caller-provided scratch and perform zero heap
// allocations in steady state — the contract the demodulator hot paths rely
// on (see PERFORMANCE.md).
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// FFTPlan holds the precomputed twiddle factors and bit-reversal
// permutation for one transform size — the FFT datapath the FPGA's core
// instantiates per configuration. The butterfly ladder is radix-4 (three
// complex multiplies per 4-point group instead of radix-2's four, ~25%
// fewer) seeded by one multiply-free radix-2 stage when log2(n) is odd; it
// runs directly on the standard base-2 bit-reversed ordering, so the
// permutation table is shared with the fused dechirp entry point. A plan is
// immutable after construction and safe for concurrent use; Transform
// itself mutates only its argument and performs no locking and no
// allocation.
type FFTPlan struct {
	n   int
	w   []complex128 // 3n/4 twiddles e^{-2πik/n} (radix-4 needs w^{3k})
	rev []int32      // bit-reversal permutation, rev[i] < i entries swap
}

// NewFFTPlan returns a plan for size n. n must be a positive power of two;
// NewFFTPlan panics otherwise, mirroring the fixed-size FFT core configured
// on the FPGA.
func NewFFTPlan(n int) *FFTPlan {
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT size %d is not a power of two", n))
	}
	p := &FFTPlan{n: n}
	// The radix-4 butterflies reach twiddle index 3k < 3n/4; the table
	// keeps the exact same e^{-2πik/n} values the radix-2 datapath used,
	// just 3n/4 of them instead of n/2.
	p.w = make([]complex128, 3*n/4)
	for i := range p.w {
		ang := -2 * math.Pi * float64(i) / float64(n)
		p.w[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	p.rev = make([]int32, n)
	for i, j := 0, 0; i < n; i++ {
		p.rev[i] = int32(j)
		mask := n >> 1
		for j&mask != 0 {
			j &^= mask
			mask >>= 1
		}
		j |= mask
	}
	return p
}

// Size returns the transform size the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

// butterflies runs the full DIT butterfly ladder over x, which must already
// be in bit-reversed order: one multiply-free radix-2 seed stage when
// log2(n) is odd, then radix-4 stages. With base-2 bit reversal the four
// size-M sub-DFTs of a 4M block sit in decimation order A, C, B, D (phases
// 0, 2, 1, 3 of the input interleave), which is what the twiddle assignment
// below encodes.
func (p *FFTPlan) butterflies(x iq.Samples) {
	n := p.n
	if n == 1 {
		return
	}
	w := p.w
	size := 1
	if bits.TrailingZeros(uint(n))&1 == 1 {
		for i := 0; i < n; i += 2 {
			u, t := x[i], x[i+1]
			x[i], x[i+1] = u+t, u-t
		}
		size = 2
	}
	for ; size < n; size *= 4 {
		step := n / (size * 4)
		for start := 0; start < n; start += size * 4 {
			j1, j2, j3 := 0, 0, 0
			for k := 0; k < size; k++ {
				i0 := start + k
				i1 := i0 + size
				i2 := i1 + size
				i3 := i2 + size
				a := x[i0]
				t2 := w[j2] * x[i1] // w^{2k} · C (phase-2 sub-DFT)
				t1 := w[j1] * x[i2] // w^k · B (phase-1 sub-DFT)
				t3 := w[j3] * x[i3] // w^{3k} · D (phase-3 sub-DFT)
				ap, am := a+t2, a-t2
				bp, bm := t1+t3, t1-t3
				jb := complex(imag(bm), -real(bm)) // -j·(t1-t3), multiply-free
				x[i0] = ap + bp
				x[i1] = am + jb
				x[i2] = ap - bp
				x[i3] = am - jb
				j1 += step
				j2 += 2 * step
				j3 += 3 * step
			}
		}
	}
}

// Transform computes the in-place decimation-in-time FFT of x.
// len(x) must equal the plan size. It performs no allocation.
func (p *FFTPlan) Transform(x iq.Samples) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("dsp: FFT input length %d != plan size %d", len(x), n))
	}
	for i, r := range p.rev {
		if int(r) > i {
			x[i], x[r] = x[r], x[i]
		}
	}
	p.butterflies(x)
}

// DechirpTransformInto multiplies x by the conjugate of ref (the Complex
// Multiplier block of the demodulator) while scattering the products into
// dst in bit-reversed order, then runs the butterfly ladder on dst and
// returns it. It fuses DechirpInto and Transform's separate permutation
// pass into one walk over the window. All three slices must have the plan's
// length; dst must not alias x or ref. It performs no allocation.
func (p *FFTPlan) DechirpTransformInto(dst, x, ref iq.Samples) iq.Samples {
	n := p.n
	if len(x) != n || len(ref) != n {
		panic(fmt.Sprintf("dsp: dechirp-transform length %d/%d != plan size %d", len(x), len(ref), n))
	}
	if len(dst) != n {
		panic(fmt.Sprintf("dsp: dechirp-transform dst length %d != plan size %d", len(dst), n))
	}
	for i, r := range p.rev {
		v := ref[i]
		dst[r] = x[i] * complex(real(v), -imag(v))
	}
	p.butterflies(dst)
	return dst
}

// Inverse computes the in-place inverse FFT of x with 1/N normalization.
// The entry conjugation is fused into the bit-reversal pass and the exit
// conjugation into the 1/N scale, so the inverse costs one pass more than
// the forward transform rather than three. It performs no allocation.
func (p *FFTPlan) Inverse(x iq.Samples) {
	if len(x) != p.n {
		panic(fmt.Sprintf("dsp: IFFT input length %d != plan size %d", len(x), p.n))
	}
	for i, r := range p.rev {
		switch {
		case int(r) > i:
			xi, xr := x[i], x[r]
			x[i] = complex(real(xr), -imag(xr))
			x[r] = complex(real(xi), -imag(xi))
		case int(r) == i:
			x[i] = complex(real(x[i]), -imag(x[i]))
		}
	}
	p.butterflies(x)
	inv := 1 / float64(p.n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, -imag(x[i])*inv)
	}
}

// planCache holds shared plans for the package-level FFT/IFFT entry points.
// sync.Map gives a lock-free fast path once a size has been planned.
var planCache sync.Map // int -> *FFTPlan

// PlanFFT returns a shared immutable plan for size n, creating it on first
// use. Hot paths that own their buffer sizes should hold their own plan
// from NewFFTPlan instead; this cache exists for the convenience entry
// points below.
func PlanFFT(n int) *FFTPlan {
	if p, ok := planCache.Load(n); ok {
		return p.(*FFTPlan)
	}
	p, _ := planCache.LoadOrStore(n, NewFFTPlan(n))
	return p.(*FFTPlan)
}

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the in-place radix-2 decimation-in-time FFT of x.
// len(x) must be a positive power of two; FFT panics otherwise, mirroring
// the fixed-size FFT core configured on the FPGA.
func FFT(x iq.Samples) { PlanFFT(len(x)).Transform(x) }

// IFFT computes the in-place inverse FFT of x with 1/N normalization.
func IFFT(x iq.Samples) { PlanFFT(len(x)).Inverse(x) }

// PeakBin returns the index and squared magnitude of the largest FFT bin.
// It is the Symbol Detector block of the LoRa demodulator (Fig. 6b).
func PeakBin(x iq.Samples) (bin int, power float64) {
	for i, v := range x {
		p := real(v)*real(v) + imag(v)*imag(v)
		if p > power {
			power, bin = p, i
		}
	}
	return bin, power
}

// MagnitudesInto writes the squared magnitude of each element of x into
// dst and returns dst. len(dst) must equal len(x). It performs no
// allocation.
func MagnitudesInto(dst []float64, x iq.Samples) []float64 {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("dsp: magnitudes length mismatch %d != %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return dst
}

// Magnitudes returns the squared magnitude of each element.
func Magnitudes(x iq.Samples) []float64 {
	return MagnitudesInto(make([]float64, len(x)), x)
}
