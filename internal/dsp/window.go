package dsp

import "math"

// Hann returns an n-point Hann window.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// Hamming returns an n-point Hamming window.
func Hamming(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}
