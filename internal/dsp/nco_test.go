package dsp

import (
	"math"
	"testing"

	"github.com/uwsdr/tinysdr/internal/iq"
)

func TestNCOFrequencyAccuracy(t *testing.T) {
	for _, freq := range []float64{0.05, 0.25, -0.125, -0.37} {
		n := NewNCO(freq)
		x := n.Generate(4096)
		FFT(x)
		peak, _ := PeakBin(x)
		// Convert bin to signed normalized frequency.
		got := float64(peak) / 4096
		if got >= 0.5 {
			got -= 1
		}
		if math.Abs(got-freq) > 1.0/4096 {
			t.Errorf("freq %v: peak at %v", freq, got)
		}
	}
}

func TestNCOConstantEnvelope(t *testing.T) {
	n := NewNCO(0.1)
	for i, x := range n.Generate(1000) {
		if math.Abs(math.Hypot(real(x), imag(x))-1) > 0.01 {
			t.Fatalf("sample %d envelope deviates", i)
		}
	}
}

func TestNCOSpurLevel(t *testing.T) {
	// The 10-bit LUT phase truncation yields spurs; they must stay below
	// -55 dBc, consistent with the clean single-tone spectrum in Fig. 8.
	n := NewNCO(0.1000976562) // deliberately not bin-aligned in hardware terms
	x := n.Generate(16384)
	spec := Welch(x, 4096, 1)
	if sfdr := spec.SFDR(3); sfdr < 55 {
		t.Errorf("SFDR = %.1f dB, want > 55 dB", sfdr)
	}
}

func TestNCOPhaseContinuityAcrossRetune(t *testing.T) {
	// Retuning must not jump phase: consecutive samples around the retune
	// stay on the unit circle with bounded phase step.
	n := NewNCO(0.01)
	a := n.Generate(10)
	n.SetFrequency(0.02)
	b := n.Generate(10)
	last := a[len(a)-1]
	first := b[0]
	dot := real(last)*real(first) + imag(last)*imag(first)
	// cos of phase step; for f=0.01..0.02 the step is small, dot must be > 0.9.
	if dot < 0.9 {
		t.Errorf("phase discontinuity at retune: dot=%v", dot)
	}
}

func TestNCOMix(t *testing.T) {
	// Mixing a tone at f1 with an NCO at f2 moves it to f1+f2.
	carrier := NewNCO(0.1).Generate(2048)
	NewNCO(0.15).Mix(carrier)
	FFT(carrier)
	peak, _ := PeakBin(carrier)
	want := int(math.Round(0.25 * 2048))
	if peak != want {
		t.Errorf("mixed tone at bin %d, want %d", peak, want)
	}
}

func TestNCODCIsConstant(t *testing.T) {
	n := NewNCO(0)
	x := n.Generate(16)
	for i, v := range x {
		if v != x[0] {
			t.Fatalf("DC NCO sample %d changed: %v vs %v", i, v, x[0])
		}
	}
}

func TestWindows(t *testing.T) {
	h := Hann(64)
	if h[0] > 1e-12 || h[63] > 1e-12 {
		t.Error("Hann endpoints should be ~0")
	}
	max := 0.0
	for _, v := range h {
		if v > max {
			max = v
		}
	}
	if math.Abs(max-1) > 1e-3 {
		t.Errorf("Hann peak = %v, want ~1", max)
	}
	hm := Hamming(64)
	if math.Abs(hm[0]-0.08) > 1e-9 {
		t.Errorf("Hamming endpoint = %v, want 0.08", hm[0])
	}
	if len(Hann(1)) != 1 || Hann(1)[0] != 1 {
		t.Error("Hann(1) should be [1]")
	}
	if len(Hamming(1)) != 1 || Hamming(1)[0] != 1 {
		t.Error("Hamming(1) should be [1]")
	}
}

func TestWelchCalibration(t *testing.T) {
	// A -40 dBm tone must read -40 dBm at its peak bin.
	n := NewNCO(0.2)
	x := n.Generate(32768)
	iq.Samples(x).ScaleToDBm(-40)
	spec := Welch(x, 1024, 4e6)
	_, p := spec.Peak()
	if math.Abs(p-(-40)) > 0.5 {
		t.Errorf("tone reads %.2f dBm, want -40 +- 0.5", p)
	}
}

func TestWelchFreqAxis(t *testing.T) {
	spec := Spectrum{SampleRate: 4e6, PowerDBm: make([]float64, 1024)}
	if f := spec.Freq(512); f != 0 {
		t.Errorf("center bin freq = %v, want 0", f)
	}
	if f := spec.Freq(0); f != -2e6 {
		t.Errorf("first bin freq = %v, want -2e6", f)
	}
}

func TestWelchShortInput(t *testing.T) {
	// Shorter than one segment must still produce a finite spectrum.
	x := NewNCO(0.1).Generate(100)
	spec := Welch(x, 256, 1e6)
	if len(spec.PowerDBm) != 256 {
		t.Fatalf("spectrum length %d", len(spec.PowerDBm))
	}
}

func TestWelchPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Welch(make(iq.Samples, 100), 100, 1e6)
}
