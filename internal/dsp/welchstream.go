package dsp

import (
	"github.com/uwsdr/tinysdr/internal/iq"
)

// WelchStream is the chunked form of WelchPlan.EstimateInto: samples
// arrive in arbitrarily-sized chunks (the phy.Stream contract) and
// periodograms are accumulated as each Hann window fills, so a consumer's
// working set is one chunk plus the plan's window — never the whole
// capture. For the same sample sequence, FinishInto is bit-identical to a
// one-shot EstimateInto regardless of how the sequence was chunked,
// including the short-input populated-fraction calibration.
//
// After construction, Extend and FinishInto perform no heap allocation. A
// WelchStream owns scratch and is single-goroutine; give each worker its
// own, like the plan it wraps.
type WelchStream struct {
	plan *WelchPlan
	// carry holds the unprocessed stream tail: up to one full window plus
	// the samples of the chunk currently being absorbed.
	carry    iq.Samples
	fill     int
	total    int
	segments int
	seg      iq.Samples
	acc      []float64
}

// Stream returns a chunked estimator over the plan. The stream keeps its
// own segment scratch, so it may be used alongside the plan's one-shot
// EstimateInto (but shares nothing across goroutines).
func (w *WelchPlan) Stream() *WelchStream {
	n := w.Size()
	return &WelchStream{
		plan:  w,
		carry: make(iq.Samples, 2*n),
		seg:   make(iq.Samples, n),
		acc:   make([]float64, n),
	}
}

// Reset discards all absorbed samples, ready for a fresh estimate.
func (s *WelchStream) Reset() {
	s.fill, s.total, s.segments = 0, 0, 0
	for i := range s.acc {
		s.acc[i] = 0
	}
}

// Extend absorbs the next chunk of the stream, accumulating a windowed
// periodogram whenever a full segment (50% overlap, matching
// EstimateInto's walk) completes.
func (s *WelchStream) Extend(chunk iq.Samples) {
	n := s.plan.Size()
	for len(chunk) > 0 {
		c := copy(s.carry[s.fill:], chunk)
		chunk = chunk[c:]
		s.fill += c
		s.total += c
		for s.fill >= n {
			s.accumulate(s.carry[:n])
			copy(s.carry, s.carry[n/2:s.fill])
			s.fill -= n / 2
		}
	}
}

// accumulate processes one full window, exactly as EstimateInto's segment
// loop does.
func (s *WelchStream) accumulate(x iq.Samples) {
	w := s.plan
	for i := range s.seg {
		s.seg[i] = x[i] * complex(w.win[i], 0)
	}
	w.plan.Transform(s.seg)
	for i, v := range s.seg {
		s.acc[i] += real(v)*real(v) + imag(v)*imag(v)
	}
	s.segments++
}

// FinishInto computes the calibrated spectrum of everything absorbed since
// the last Reset into dst (len(dst) must equal the plan's FFT size; it
// panics otherwise) and returns the Spectrum viewing dst. A stream shorter
// than one segment takes the same zero-padded single-window path as
// EstimateInto, calibrated by the populated window fraction. The stream
// remains extendable: a later Extend + FinishInto re-renders the estimate
// over the longer prefix.
func (s *WelchStream) FinishInto(dst []float64, sampleRate float64) Spectrum {
	w := s.plan
	n := w.Size()
	if len(dst) != n {
		panic("dsp: Welch dst length must equal the plan's FFT size")
	}
	segments := s.segments
	coherent := w.winSum[n] / float64(n)
	acc := s.acc
	if segments == 0 {
		// Everything absorbed still sits in carry (total < n): zero-pad a
		// single window into seg and calibrate against the populated
		// window mass, bit-for-bit the EstimateInto short-input path.
		for i := range s.seg {
			if i < s.total {
				s.seg[i] = s.carry[i] * complex(w.win[i], 0)
			} else {
				s.seg[i] = 0
			}
		}
		w.plan.Transform(s.seg)
		for i, v := range s.seg {
			s.seg[i] = complex(real(v)*real(v)+imag(v)*imag(v), 0)
		}
		segments = 1
		coherent = w.winSum[min(s.total, n)] / float64(n)
		norm := 1 / (float64(segments) * float64(n) * float64(n) * coherent * coherent)
		for i := range dst {
			src := (i + n/2) % n
			dst[i] = iq.MilliwattsToDBm(real(s.seg[src]) * norm)
		}
		return Spectrum{SampleRate: sampleRate, PowerDBm: dst, ENBWBins: w.enbw}
	}
	norm := 1 / (float64(segments) * float64(n) * float64(n) * coherent * coherent)
	for i := range dst {
		src := (i + n/2) % n
		dst[i] = iq.MilliwattsToDBm(acc[src] * norm)
	}
	return Spectrum{SampleRate: sampleRate, PowerDBm: dst, ENBWBins: w.enbw}
}
