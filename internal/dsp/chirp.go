package dsp

import (
	"fmt"
	"math"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// ChirpGen is the Chirp Generator block of the tinySDR LoRa modem (Fig. 6).
// It synthesizes CSS chirp symbols with a frequency accumulator driving the
// phase-accumulator/LUT datapath — the "squared phase accumulator and two
// lookup tables for Sin and Cos" the paper describes. Because frequency
// advances in discrete per-sample steps, chirps of different slopes are only
// approximately orthogonal, which is the effect §6 of the paper measures.
type ChirpGen struct {
	// SF is the spreading factor, 6..12. A symbol spans 2^SF chips and
	// encodes SF bits as a cyclic shift of the base upchirp.
	SF int
	// OSR is the oversampling ratio in samples per chip (a power of two).
	// The radio interface runs at 4 MHz; after the FPGA front-end the
	// stream is at OSR x bandwidth.
	OSR int
	// Ideal selects an infinite-precision waveform (float phase, exact
	// exponentials) instead of the FPGA's LUT datapath. It models
	// commercial silicon like the SX1276 when used as a comparator.
	Ideal bool
}

// Validate reports whether the generator parameters are representable on the
// tinySDR FPGA.
func (g ChirpGen) Validate() error {
	if g.SF < 6 || g.SF > 12 {
		return fmt.Errorf("dsp: spreading factor %d out of LoRa range 6..12", g.SF)
	}
	if !IsPowerOfTwo(g.OSR) {
		return fmt.Errorf("dsp: oversampling ratio %d must be a power of two", g.OSR)
	}
	return nil
}

// NumChips returns the number of chips per symbol, 2^SF.
func (g ChirpGen) NumChips() int { return 1 << g.SF }

// SymbolLen returns the number of samples per symbol.
func (g ChirpGen) SymbolLen() int { return g.NumChips() * g.OSR }

// Upchirp returns one symbol whose value is the given cyclic shift
// (0 <= shift < 2^SF). Shift 0 is the base upchirp used in preambles.
func (g ChirpGen) Upchirp(shift int) iq.Samples { return g.symbol(shift, false, g.SymbolLen()) }

// Downchirp returns one base downchirp symbol (linearly decreasing
// frequency), used in the LoRa start-of-frame delimiter and as the
// demodulator's dechirp reference.
func (g ChirpGen) Downchirp() iq.Samples { return g.symbol(0, true, g.SymbolLen()) }

// QuarterDownchirp returns the fractional 0.25-symbol tail of the LoRa
// start-of-frame delimiter (the packet header contains 2.25 downchirps).
func (g ChirpGen) QuarterDownchirp() iq.Samples { return g.symbol(0, true, g.SymbolLen()/4) }

func (g ChirpGen) symbol(shift int, down bool, count int) iq.Samples {
	st := NewChirpStream(g)
	return st.Symbol(shift, down, count)
}

// ChirpStream generates chirp symbols with phase continuity across symbol
// boundaries, exactly as the FPGA's running phase accumulator does. A
// phase-continuous preamble is what lets the demodulator detect symbols in
// windows that straddle symbol boundaries without coherence loss.
type ChirpStream struct {
	g      ChirpGen
	phase  uint32
	phaseF float64
}

// NewChirpStream returns a stream for the given generator configuration,
// validating it once up front.
func NewChirpStream(g ChirpGen) *ChirpStream {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return &ChirpStream{g: g}
}

// Symbol appends one chirp symbol of count samples with the given cyclic
// shift and slope direction, continuing the accumulated phase.
func (st *ChirpStream) Symbol(shift int, down bool, count int) iq.Samples {
	return st.SymbolInto(make(iq.Samples, count), shift, down)
}

// SymbolInto writes one chirp symbol of len(dst) samples with the given
// cyclic shift and slope direction into dst, continuing the accumulated
// phase, and returns dst. It performs no allocation — the primitive behind
// the zero-alloc ModulateInto waveform path.
func (st *ChirpStream) SymbolInto(dst iq.Samples, shift int, down bool) iq.Samples {
	g := st.g
	s := g.SymbolLen()
	out := dst
	count := len(dst)
	m := shift * g.OSR % s
	scale := 1 / (float64(s) * float64(g.OSR))
	for n := 0; n < count; n++ {
		// Instantaneous frequency in cycles/sample, swept across
		// +-BW/2 and wrapped cyclically at the symbol boundary.
		f := float64(m)*scale - 0.5/float64(g.OSR)
		if down {
			f = -f
		}
		if g.Ideal {
			ang := 2 * math.Pi * st.phaseF
			out[n] = complex(math.Cos(ang), math.Sin(ang))
			st.phaseF += f
			st.phaseF -= math.Floor(st.phaseF)
		} else {
			out[n] = lutSample(st.phase)
			st.phase += uint32(int32(math.Round(f * (1 << 32))))
		}
		m++
		if m == s {
			m = 0
		}
	}
	return out
}

// Upchirp appends one full upchirp symbol with the given shift.
func (st *ChirpStream) Upchirp(shift int) iq.Samples {
	return st.Symbol(shift, false, st.g.SymbolLen())
}

// Downchirp appends one full base downchirp symbol.
func (st *ChirpStream) Downchirp() iq.Samples {
	return st.Symbol(0, true, st.g.SymbolLen())
}

// DechirpInto multiplies x by the conjugate of ref element-wise into dst —
// the Complex Multiplier block of the demodulator — and returns dst. All
// three buffers must have equal length; dst may alias x. It performs no
// allocation.
func DechirpInto(dst, x, ref iq.Samples) iq.Samples {
	if len(x) != len(ref) {
		panic(fmt.Sprintf("dsp: dechirp length mismatch %d != %d", len(x), len(ref)))
	}
	if len(dst) != len(x) {
		panic(fmt.Sprintf("dsp: dechirp dst length mismatch %d != %d", len(dst), len(x)))
	}
	for i := range x {
		r := ref[i]
		dst[i] = x[i] * complex(real(r), -imag(r))
	}
	return dst
}

// Dechirp multiplies x by the conjugate of ref element-wise into a new
// buffer — the Complex Multiplier block of the demodulator. The buffers must
// have equal length.
func Dechirp(x, ref iq.Samples) iq.Samples {
	return DechirpInto(make(iq.Samples, len(x)), x, ref)
}

// FoldBinsInto combines the FFT magnitudes of a dechirped oversampled symbol
// into len(dst) decision bins and returns dst. With oversampling, the energy
// of cyclic shift k splits between FFT bins k and k-N (mod S); folding
// re-merges them so the detector sees one peak per candidate shift. dst must
// not alias mags. It performs no allocation.
func FoldBinsInto(dst, mags []float64) []float64 {
	s := len(mags)
	numChips := len(dst)
	if s == numChips {
		copy(dst, mags)
		return dst
	}
	for k := 0; k < numChips; k++ {
		dst[k] = mags[k] + mags[(s-numChips+k)%s]
	}
	return dst
}

// FoldBins combines the FFT magnitudes of a dechirped oversampled symbol into
// numChips decision bins.
func FoldBins(mags []float64, numChips int) []float64 {
	return FoldBinsInto(make([]float64, numChips), mags)
}

// FoldPeakInto fuses MagnitudesInto, FoldBinsInto and the Symbol Detector's
// peak scan into one pass over the FFT output x: it writes the folded
// squared-magnitude decision bins into dst and returns the winning bin, its
// power, and the total folded power (ties keep the lowest bin, matching
// the sequential scan). len(dst) is the number of decision bins and must
// divide len(x); dst must not alias x's storage. Each folded bin is the sum
// of the two image magnitudes rounded exactly as the unfused
// MagnitudesInto→FoldBinsInto pipeline rounds them, so the fusion is
// bit-exact. It performs no allocation.
func FoldPeakInto(dst []float64, x iq.Samples) (bin int, peak, sum float64) {
	s := len(x)
	nc := len(dst)
	if nc == s {
		for i, v := range x {
			m := real(v)*real(v) + imag(v)*imag(v)
			dst[i] = m
			sum += m
			if m > peak {
				peak, bin = m, i
			}
		}
		return bin, peak, sum
	}
	base := s - nc // k's image bin k-N mod S never wraps for k < nc
	for k := 0; k < nc; k++ {
		v, u := x[k], x[base+k]
		m0 := real(v)*real(v) + imag(v)*imag(v)
		m1 := real(u)*real(u) + imag(u)*imag(u)
		m := m0 + m1
		dst[k] = m
		sum += m
		if m > peak {
			peak, bin = m, k
		}
	}
	return bin, peak, sum
}
