package dsp

import (
	"math"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// Spectrum is a power spectral estimate over [-SampleRate/2, SampleRate/2).
type Spectrum struct {
	// SampleRate is the sample rate of the analyzed signal in Hz.
	SampleRate float64
	// PowerDBm holds the per-bin power in dBm, DC-centered: bin 0 is
	// -SampleRate/2 and bin len-1 approaches +SampleRate/2.
	PowerDBm []float64
}

// Freq returns the center frequency in Hz of bin i (relative to the carrier).
func (s Spectrum) Freq(i int) float64 {
	n := len(s.PowerDBm)
	return (float64(i) - float64(n)/2) * s.SampleRate / float64(n)
}

// Peak returns the bin index and power of the strongest component.
func (s Spectrum) Peak() (bin int, dbm float64) {
	dbm = math.Inf(-1)
	for i, p := range s.PowerDBm {
		if p > dbm {
			dbm, bin = p, i
		}
	}
	return bin, dbm
}

// SFDR returns the spurious-free dynamic range in dB: the gap between the
// peak bin and the strongest bin outside +-guard bins around the peak.
func (s Spectrum) SFDR(guard int) float64 {
	peak, peakP := s.Peak()
	worst := math.Inf(-1)
	for i, p := range s.PowerDBm {
		if i >= peak-guard && i <= peak+guard {
			continue
		}
		if p > worst {
			worst = p
		}
	}
	return peakP - worst
}

// Welch estimates the power spectrum of x by averaging Hann-windowed
// periodograms of length fftSize with 50% overlap. The estimate is
// calibrated so a full-scale tone reads its true power in dBm.
func Welch(x iq.Samples, fftSize int, sampleRate float64) Spectrum {
	if !IsPowerOfTwo(fftSize) {
		panic("dsp: Welch fftSize must be a power of two")
	}
	win := Hann(fftSize)
	var coherentGain float64
	for _, w := range win {
		coherentGain += w
	}
	coherentGain /= float64(fftSize)

	acc := make([]float64, fftSize)
	segments := 0
	step := fftSize / 2
	for start := 0; start+fftSize <= len(x); start += step {
		seg := make(iq.Samples, fftSize)
		for i := range seg {
			seg[i] = x[start+i] * complex(win[i], 0)
		}
		FFT(seg)
		for i, v := range seg {
			m := real(v)*real(v) + imag(v)*imag(v)
			acc[i] += m
		}
		segments++
	}
	if segments == 0 {
		// Input shorter than one segment: zero-pad a single window.
		seg := make(iq.Samples, fftSize)
		for i := 0; i < len(x); i++ {
			seg[i] = x[i] * complex(win[i], 0)
		}
		FFT(seg)
		for i, v := range seg {
			acc[i] = real(v)*real(v) + imag(v)*imag(v)
		}
		segments = 1
	}

	norm := 1 / (float64(segments) * float64(fftSize) * float64(fftSize) * coherentGain * coherentGain)
	out := Spectrum{SampleRate: sampleRate, PowerDBm: make([]float64, fftSize)}
	for i := range acc {
		// FFT-shift so the result is DC-centered.
		src := (i + fftSize/2) % fftSize
		out.PowerDBm[i] = iq.MilliwattsToDBm(acc[src] * norm)
	}
	return out
}
