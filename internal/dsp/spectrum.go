package dsp

import (
	"math"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// Spectrum is a power spectral estimate over [-SampleRate/2, SampleRate/2).
type Spectrum struct {
	// SampleRate is the sample rate of the analyzed signal in Hz.
	SampleRate float64
	// PowerDBm holds the per-bin power in dBm, DC-centered: bin 0 is
	// -SampleRate/2 and bin len-1 approaches +SampleRate/2.
	PowerDBm []float64
	// ENBWBins is the noise-equivalent bandwidth of the analysis window
	// in bins (1.5 for the Hann window the Welch estimators use). The
	// per-bin calibration makes a tone's PEAK read true power, which
	// spreads the tone's energy over ENBWBins bins; integrals over a band
	// must divide by it or every tone inside the band gains +10·log10(ENBW)
	// dB. Zero (a hand-built Spectrum) is treated as 1: a plain bin sum.
	ENBWBins float64
}

// Freq returns the center frequency in Hz of bin i (relative to the carrier).
func (s Spectrum) Freq(i int) float64 {
	n := len(s.PowerDBm)
	return (float64(i) - float64(n)/2) * s.SampleRate / float64(n)
}

// Peak returns the bin index and power of the strongest component.
func (s Spectrum) Peak() (bin int, dbm float64) {
	dbm = math.Inf(-1)
	for i, p := range s.PowerDBm {
		if p > dbm {
			dbm, bin = p, i
		}
	}
	return bin, dbm
}

// SFDR returns the spurious-free dynamic range in dB: the gap between the
// peak bin and the strongest bin outside ±guard bins around the peak. The
// guard band wraps modulo the spectrum length — the axis is circular, so a
// tone near ±SampleRate/2 keeps its full guard instead of having it
// clipped at the array edge (which overstated SFDR by letting skirt bins
// count as spurs on one side only). A guard covering every bin returns
// +Inf.
func (s Spectrum) SFDR(guard int) float64 {
	n := len(s.PowerDBm)
	peak, peakP := s.Peak()
	worst := math.Inf(-1)
	for i, p := range s.PowerDBm {
		d := i - peak
		if d < 0 {
			d += n
		}
		// d is the circular offset 0..n-1; inside the guard when within
		// guard bins in either direction around the ring.
		if d <= guard || d >= n-guard {
			continue
		}
		if p > worst {
			worst = p
		}
	}
	return peakP - worst
}

// Occupancy returns the fraction of bins at or above the threshold — the
// per-spectrum scalar the crowd-sourced sensing reports quantize. An
// empty spectrum is unoccupied.
func (s Spectrum) Occupancy(thresholdDBm float64) float64 {
	if len(s.PowerDBm) == 0 {
		return 0
	}
	occ := 0
	for _, p := range s.PowerDBm {
		if p >= thresholdDBm {
			occ++
		}
	}
	return float64(occ) / float64(len(s.PowerDBm))
}

// BandPowerDBm integrates the power of every bin whose center frequency
// lies in [loHz, hiHz] (relative to the carrier) and returns the total in
// dBm, corrected for the analysis window's noise-equivalent bandwidth so a
// tone fully inside the band reads its true power rather than gaining the
// window's leakage spread (+1.76 dB for Hann). The frequency axis is
// circular, like the SFDR guard: loHz > hiHz selects the band that wraps
// through ±SampleRate/2, so a channel straddling the FFT edge integrates
// both skirts instead of losing one to the array boundary. A band covering
// no bin centers returns -Inf.
func (s Spectrum) BandPowerDBm(loHz, hiHz float64) float64 {
	var mw float64
	hit := false
	for i, p := range s.PowerDBm {
		f := s.Freq(i)
		in := f >= loHz && f <= hiHz
		if loHz > hiHz {
			// Wrapped band: everything above lo or below hi.
			in = f >= loHz || f <= hiHz
		}
		if in {
			mw += iq.DBmToMilliwatts(p)
			hit = true
		}
	}
	if !hit {
		return math.Inf(-1)
	}
	if s.ENBWBins > 0 {
		mw /= s.ENBWBins
	}
	return iq.MilliwattsToDBm(mw)
}

// WelchPlan holds the FFT plan, window and scratch for repeated Welch
// estimates of one FFT size — the plan+scratch idiom of the demod hot
// paths applied to the spectrum-sensing workload, where thousands of
// simulated nodes stream periodograms through one reused plan. After
// construction, EstimateInto performs no heap allocation. A WelchPlan owns
// scratch and is single-goroutine; give each worker its own.
type WelchPlan struct {
	plan *FFTPlan
	win  []float64
	// winSum[k] is the running window sum over win[:k]; winSum[n] is the
	// full coherent-gain numerator. Precomputing it keeps the short-input
	// calibration (populated-fraction gain) allocation- and loop-free.
	winSum []float64
	seg    iq.Samples
	acc    []float64
	enbw   float64
}

// NewWelchPlan returns a reusable estimator for the given FFT size, which
// must be a power of two (it panics otherwise, like NewFFTPlan).
func NewWelchPlan(fftSize int) *WelchPlan {
	if !IsPowerOfTwo(fftSize) {
		panic("dsp: Welch fftSize must be a power of two")
	}
	w := &WelchPlan{
		plan:   NewFFTPlan(fftSize),
		win:    Hann(fftSize),
		winSum: make([]float64, fftSize+1),
		seg:    make(iq.Samples, fftSize),
		acc:    make([]float64, fftSize),
	}
	var sumSq float64
	for i, v := range w.win {
		w.winSum[i+1] = w.winSum[i] + v
		sumSq += v * v
	}
	// Noise-equivalent bandwidth of the window in bins: n·Σw²/(Σw)²
	// (exactly 1.5 for Hann). Stamped on every Spectrum so band integrals
	// can undo the per-bin tone calibration.
	w.enbw = float64(fftSize) * sumSq / (w.winSum[fftSize] * w.winSum[fftSize])
	return w
}

// Size returns the FFT size the plan was built for.
func (w *WelchPlan) Size() int { return len(w.win) }

// EstimateInto computes the calibrated Welch power spectrum of x into dst
// (len(dst) must equal the plan's FFT size; it panics otherwise) and
// returns the Spectrum viewing dst. Hann-windowed periodograms with 50%
// overlap are averaged; an input shorter than one segment is zero-padded
// into a single window and the calibration scaled by the populated window
// fraction, so a tone reads its true power regardless of capture length
// (normalizing a partial window by the full-window coherent gain
// under-read short captures). It performs no heap allocation.
func (w *WelchPlan) EstimateInto(dst []float64, x iq.Samples, sampleRate float64) Spectrum {
	n := len(w.win)
	if len(dst) != n {
		panic("dsp: Welch dst length must equal the plan's FFT size")
	}
	for i := range w.acc {
		w.acc[i] = 0
	}
	segments := 0
	for start := 0; start+n <= len(x); start += n / 2 {
		for i := range w.seg {
			w.seg[i] = x[start+i] * complex(w.win[i], 0)
		}
		w.plan.Transform(w.seg)
		for i, v := range w.seg {
			w.acc[i] += real(v)*real(v) + imag(v)*imag(v)
		}
		segments++
	}
	coherent := w.winSum[n] / float64(n)
	if segments == 0 {
		// Input shorter than one segment: zero-pad a single window and
		// calibrate against the window mass the capture actually filled.
		for i := range w.seg {
			if i < len(x) {
				w.seg[i] = x[i] * complex(w.win[i], 0)
			} else {
				w.seg[i] = 0
			}
		}
		w.plan.Transform(w.seg)
		for i, v := range w.seg {
			w.acc[i] = real(v)*real(v) + imag(v)*imag(v)
		}
		segments = 1
		coherent = w.winSum[min(len(x), n)] / float64(n)
	}

	norm := 1 / (float64(segments) * float64(n) * float64(n) * coherent * coherent)
	for i := range w.acc {
		// FFT-shift so the result is DC-centered.
		src := (i + n/2) % n
		dst[i] = iq.MilliwattsToDBm(w.acc[src] * norm)
	}
	return Spectrum{SampleRate: sampleRate, PowerDBm: dst, ENBWBins: w.enbw}
}

// Welch estimates the power spectrum of x by averaging Hann-windowed
// periodograms of length fftSize with 50% overlap. The estimate is
// calibrated so a full-scale tone reads its true power in dBm. It is the
// one-shot convenience form of WelchPlan; repeated estimates should hold a
// plan and call EstimateInto.
func Welch(x iq.Samples, fftSize int, sampleRate float64) Spectrum {
	return NewWelchPlan(fftSize).EstimateInto(make([]float64, fftSize), x, sampleRate)
}
