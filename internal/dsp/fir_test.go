package dsp

import (
	"math"
	"math/cmplx"
	"testing"

	"github.com/uwsdr/tinysdr/internal/iq"
)

func TestLowpassResponse(t *testing.T) {
	f := NewLowpass(63, 0.1)
	if g := f.Response(0); math.Abs(g) > 0.01 {
		t.Errorf("DC gain = %v dB, want 0", g)
	}
	if g := f.Response(0.05); g < -1 {
		t.Errorf("passband gain at 0.05 = %v dB, want > -1 dB", g)
	}
	if g := f.Response(0.2); g > -40 {
		t.Errorf("stopband gain at 0.2 = %v dB, want < -40 dB", g)
	}
	if g := f.Response(0.45); g > -40 {
		t.Errorf("stopband gain at 0.45 = %v dB, want < -40 dB", g)
	}
}

func TestLowpassPanicsOnBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { NewLowpass(0, 0.1) },
		func() { NewLowpass(15, 0) },
		func() { NewLowpass(15, 0.5) },
		func() { NewFIR(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFilterPassesInBandTone(t *testing.T) {
	f := NewLowpass(63, 0.1)
	n := 1024
	x := make(iq.Samples, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*0.03*float64(i)))
	}
	y := f.Filter(x)
	// Ignore edge transients.
	mid := y[100 : n-100]
	if p := iq.Samples(mid).PowerDBm(); math.Abs(p) > 0.5 {
		t.Errorf("in-band tone power after filter = %v dBm, want ~0", p)
	}
}

func TestFilterRejectsOutOfBandTone(t *testing.T) {
	f := NewLowpass(63, 0.1)
	n := 1024
	x := make(iq.Samples, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*0.35*float64(i)))
	}
	y := f.Filter(x)
	mid := y[100 : n-100]
	if p := iq.Samples(mid).PowerDBm(); p > -40 {
		t.Errorf("out-of-band tone power after filter = %v dBm, want < -40", p)
	}
}

func TestFilterLength(t *testing.T) {
	f := NewLowpass(15, 0.2)
	x := make(iq.Samples, 37)
	if got := len(f.Filter(x)); got != 37 {
		t.Errorf("Filter output length = %d, want 37", got)
	}
}

func TestFilterRealMatchesComplex(t *testing.T) {
	f := NewLowpass(21, 0.15)
	xr := make([]float64, 128)
	xc := make(iq.Samples, 128)
	for i := range xr {
		xr[i] = math.Sin(0.2 * float64(i))
		xc[i] = complex(xr[i], 0)
	}
	yr := f.FilterReal(xr)
	yc := f.Filter(xc)
	for i := range yr {
		if math.Abs(yr[i]-real(yc[i])) > 1e-12 {
			t.Fatalf("sample %d: real path %v != complex path %v", i, yr[i], real(yc[i]))
		}
	}
}

func TestTapsCopySemantics(t *testing.T) {
	orig := []float64{1, 2, 3}
	f := NewFIR(orig)
	orig[0] = 99
	if f.Taps()[0] == 99 {
		t.Error("NewFIR aliased caller slice")
	}
	taps := f.Taps()
	taps[1] = -1
	if f.Taps()[1] == -1 {
		t.Error("Taps() exposed internal state")
	}
}

func TestDecimatePreservesInBandTone(t *testing.T) {
	// A tone at 0.02 cycles/sample decimated by 4 should appear at 0.08.
	n := 4096
	x := make(iq.Samples, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*0.02*float64(i)))
	}
	y := Decimate(x, 4)
	if len(y) < n/4 {
		t.Fatalf("decimated length %d too short", len(y))
	}
	spec := y[64 : len(y)-64]
	buf := make(iq.Samples, 512)
	copy(buf, spec)
	FFT(buf)
	peak, _ := PeakBin(buf)
	wantBin := int(math.Round(0.08 * 512))
	if peak != wantBin {
		t.Errorf("decimated tone at bin %d, want %d", peak, wantBin)
	}
}

func TestDecimateFactorOne(t *testing.T) {
	x := randomSamples(64, 3)
	y := Decimate(x, 1)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("factor-1 decimation must be identity")
		}
	}
	// And it must be a copy, not an alias.
	y[0] = 42
	if x[0] == 42 {
		t.Error("Decimate aliased its input")
	}
}

func TestDecimatePanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Decimate(make(iq.Samples, 8), 0)
}

func TestGaussianTaps(t *testing.T) {
	g := NewGaussian(0.5, 8, 4)
	taps := g.Taps()
	if len(taps) != 33 {
		t.Fatalf("tap count = %d, want 33", len(taps))
	}
	var sum float64
	for _, v := range taps {
		sum += v
		if v < 0 {
			t.Fatal("Gaussian taps must be non-negative")
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("tap sum = %v, want 1", sum)
	}
	// Symmetry and peak at center.
	for i := 0; i < len(taps)/2; i++ {
		if math.Abs(taps[i]-taps[len(taps)-1-i]) > 1e-12 {
			t.Fatalf("taps not symmetric at %d", i)
		}
	}
	mid := len(taps) / 2
	for i := 1; i <= mid; i++ {
		if taps[mid-i] > taps[mid-i+1] {
			t.Fatalf("taps not monotone toward center at %d", i)
		}
	}
}

func TestGaussianPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGaussian(0, 8, 4)
}
