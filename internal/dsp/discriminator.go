package dsp

import (
	"fmt"
	"math"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// Discriminator fuses a channel-select FIR with FM quadrature phase
// differentiation — the front half of the GFSK receiver (§4.2). Each
// filtered sample is consumed by the differentiator straight out of the MAC
// loop, so the filtered waveform never round-trips through a scratch
// buffer, and the incremental Extend contract lets chunked consumers (the
// adaptive BER sweep) stop mid-signal without recomputing the prefix.
//
// A Discriminator carries one sample of state between Extend calls and is
// NOT safe for concurrent use.
type Discriminator struct {
	fir  *FIR
	prev complex128 // last filtered sample emitted
	pos  int        // samples of the current signal already discriminated
}

// NewDiscriminator returns a discriminator running behind the given
// channel-select filter.
func NewDiscriminator(f *FIR) *Discriminator {
	if f == nil {
		panic("dsp: discriminator requires a filter")
	}
	return &Discriminator{fir: f}
}

// Reset begins a new signal.
func (d *Discriminator) Reset() {
	d.prev = 0
	d.pos = 0
}

// Pos returns how many samples of the current signal have been processed.
func (d *Discriminator) Pos() int { return d.pos }

// ExtendInto filters x[Pos():upto] (clamped to len(x)) and writes the
// per-sample instantaneous frequency of the filtered signal, in radians per
// sample, into the same range of dst, returning dst[:min(upto,len(x))].
// dst[0] is 0 (no previous sample). The filter's edge clamping is computed
// against the full signal length, so the values are identical whether the
// signal is processed in one call or many — chunked runs are exact
// prefixes of a full run. It performs no allocation.
func (d *Discriminator) ExtendInto(dst []float64, x iq.Samples, upto int) []float64 {
	n := len(x)
	if upto > n {
		upto = n
	}
	if len(dst) < upto {
		panic(fmt.Sprintf("dsp: discriminator dst length %d < %d", len(dst), upto))
	}
	taps := d.fir.taps
	delay := (len(taps) - 1) / 2
	prev := d.prev
	for i := d.pos; i < upto; i++ {
		// Real taps: accumulate the I and Q rails separately, matching
		// FIR.FilterInto's two-multiply MAC.
		var re, im float64
		kLo := i + delay - (n - 1)
		if kLo < 0 {
			kLo = 0
		}
		kHi := i + delay
		if kHi > len(taps)-1 {
			kHi = len(taps) - 1
		}
		for k := kLo; k <= kHi; k++ {
			v := x[i+delay-k]
			t := taps[k]
			re += real(v) * t
			im += imag(v) * t
		}
		acc := complex(re, im)
		if i == 0 {
			dst[0] = 0
		} else {
			v := acc * complex(real(prev), -imag(prev))
			dst[i] = math.Atan2(imag(v), real(v))
		}
		prev = acc
	}
	d.prev = prev
	if upto > d.pos {
		d.pos = upto
	}
	return dst[:upto]
}

// DiscriminateInto filters x and writes the instantaneous frequency of the
// whole filtered signal into dst in one fused pass, returning dst. len(dst)
// must be at least len(x). It performs no allocation.
func (d *Discriminator) DiscriminateInto(dst []float64, x iq.Samples) []float64 {
	d.Reset()
	return d.ExtendInto(dst, x, len(x))
}
