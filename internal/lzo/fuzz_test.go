package lzo

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Decompress must never panic on arbitrary input: it is the parser on the
// OTA receive path, fed from radio packets.
func TestDecompressNeverPanicsOnGarbage(t *testing.T) {
	f := func(stream []byte, outLen uint16) bool {
		out, err := Decompress(stream, int(outLen)%4096)
		// Either a clean error or output of exactly the requested size.
		return err != nil || len(out) == int(outLen)%4096
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecompressNeverPanicsOnMutatedStreams(t *testing.T) {
	// Start from valid streams and flip bytes: every mutation must either
	// decode to the right length or fail cleanly.
	rng := rand.New(rand.NewSource(42))
	orig := make([]byte, 4096)
	for i := 0; i < len(orig); i += 7 {
		orig[i] = byte(rng.Intn(256))
	}
	comp := Compress(orig, nil)
	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), comp...)
		for flips := 0; flips <= trial%4; flips++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		out, err := Decompress(mut, len(orig))
		if err == nil && len(out) != len(orig) {
			t.Fatalf("trial %d: wrong length with no error", trial)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		stored := Store(data)
		// Overhead bound: one token per 128 bytes.
		if len(stored) > len(data)+len(data)/128+2 {
			return false
		}
		out, err := Decompress(stored, len(data))
		return err == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStoreBlocksRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	img := make([]byte, 100000)
	rng.Read(img)
	blocks := StoreBlocks(img, 30*1024)
	out, err := DecompressBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, img) {
		t.Fatal("stored blocks mismatch")
	}
}

func TestStoreBlocksPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StoreBlocks([]byte{1}, -1)
}
