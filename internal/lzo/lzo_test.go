package lzo

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []byte) []byte {
	t.Helper()
	comp := Compress(data, nil)
	got, err := Decompress(comp, len(data))
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	return comp
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x42},
		[]byte("a"),
		[]byte("abcabcabcabcabcabc"),
		[]byte("the quick brown fox jumps over the lazy dog"),
		bytes.Repeat([]byte{0}, 100000),
		bytes.Repeat([]byte("0123456789abcdef"), 4096),
	}
	for i, c := range cases {
		t.Logf("case %d: %d -> %d bytes", i, len(c), len(roundTrip(t, c)))
	}
}

func TestRoundTripRandomProperty(t *testing.T) {
	f := func(data []byte) bool {
		comp := Compress(data, nil)
		if len(comp) > MaxCompressedSize(len(data)) {
			return false
		}
		got, err := Decompress(comp, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRoundTripPeriodicRuns exercises every overlap-copy path in
// matchCopy: periods below the byte-wise threshold, at it, and above it,
// against match lengths shorter and far longer than the period.
func TestRoundTripPeriodicRuns(t *testing.T) {
	for _, period := range []int{1, 2, 3, 7, 8, 9, 16, 64, 255} {
		pattern := make([]byte, period)
		for i := range pattern {
			pattern[i] = byte(i*37 + 11)
		}
		for _, reps := range []int{2, 3, 100, 5000} {
			data := bytes.Repeat(pattern, reps)
			comp := Compress(data, nil)
			got, err := Decompress(comp, len(data))
			if err != nil {
				t.Fatalf("period %d reps %d: %v", period, reps, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("period %d reps %d: round trip mismatch", period, reps)
			}
		}
	}
}

// TestDecompressLimitRejectsOversizedDeclaration pins the hostile-manifest
// fix: a declared output length beyond the caller's cap (or negative) must
// fail before any parsing, and a valid stream within the cap still decodes.
func TestDecompressLimitRejectsOversizedDeclaration(t *testing.T) {
	data := []byte("thirty-kilobyte-block-goes-here")
	comp := Compress(data, nil)
	if _, err := DecompressLimit(comp, len(data), len(data)-1); err == nil {
		t.Error("outLen above cap not rejected")
	}
	if _, err := DecompressLimit(comp, -1, 1<<20); err == nil {
		t.Error("negative outLen not rejected")
	}
	if _, err := DecompressLimit(nil, 1<<62, 1<<62); err == nil {
		// The incremental-growth path: a huge declared length with an
		// empty stream must fail on the length check, not allocate.
		t.Error("empty stream with huge outLen not rejected")
	}
	got, err := DecompressLimit(comp, len(data), len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("valid stream at exact cap: %q, %v", got, err)
	}
}

func TestZeroRunsCollapse(t *testing.T) {
	// The bitstream property §5.3 relies on: unused configuration frames
	// (zeros) must compress to well under 1%.
	data := make([]byte, 100000)
	comp := roundTrip(t, data)
	if ratio := float64(len(comp)) / float64(len(data)); ratio > 0.01 {
		t.Errorf("zero ratio = %.4f, want < 0.01", ratio)
	}
}

func TestRandomDataBarelyExpands(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 100000)
	rng.Read(data)
	comp := roundTrip(t, data)
	if ratio := float64(len(comp)) / float64(len(data)); ratio > 1.01 {
		t.Errorf("random expansion = %.4f, want < 1.01", ratio)
	}
}

func TestStructuredTextCompresses(t *testing.T) {
	data := bytes.Repeat([]byte("MODULE lora_demodulator PORT(clk, rst_n, iq_in, sym_out); "), 800)
	comp := roundTrip(t, data)
	if ratio := float64(len(comp)) / float64(len(data)); ratio > 0.1 {
		t.Errorf("repetitive text ratio = %.3f, want < 0.1", ratio)
	}
}

func TestDecompressRejectsCorruption(t *testing.T) {
	data := bytes.Repeat([]byte("tinysdr"), 1000)
	comp := Compress(data, nil)
	// Wrong output length.
	if _, err := Decompress(comp, len(data)+1); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := Decompress(comp, len(data)-1); err == nil {
		t.Error("short length accepted")
	}
	// Truncated stream.
	if _, err := Decompress(comp[:len(comp)/2], len(data)); err == nil {
		t.Error("truncated stream accepted")
	}
	// Bogus distance: a match token referencing before the start.
	bad := []byte{0x80, 0xFF, 0xFF} // len-3 match at distance 65535 with empty history
	if _, err := Decompress(bad, 3); err == nil {
		t.Error("invalid distance accepted")
	}
	// Zero distance.
	bad2 := []byte{0x00, 0x41, 0x80, 0x00, 0x00}
	if _, err := Decompress(bad2, 4); err == nil {
		t.Error("zero distance accepted")
	}
}

func TestDecompressEmptyStream(t *testing.T) {
	got, err := Decompress(nil, 0)
	if err != nil || len(got) != 0 {
		t.Errorf("empty stream: %v, %d bytes", err, len(got))
	}
	if _, err := Decompress(nil, 5); err == nil {
		t.Error("empty stream with nonzero length accepted")
	}
}

func TestOverlappingMatchRunEncoding(t *testing.T) {
	// "aaaaa..." must use a distance-1 overlapping match.
	data := bytes.Repeat([]byte{'a'}, 5000)
	comp := roundTrip(t, data)
	if len(comp) > 40 {
		t.Errorf("run of 5000 compressed to %d bytes, want < 40", len(comp))
	}
}

func TestBlockPipeline30KB(t *testing.T) {
	// §3.4: 30 kB blocks fit the MCU SRAM; block-wise compression must
	// reassemble to the exact image.
	rng := rand.New(rand.NewSource(2))
	img := make([]byte, 579*1024)
	// Mixed content: half zeros, half structured.
	for i := 0; i < len(img)/2; i += 64 {
		rng.Read(img[i : i+16])
	}
	blocks := CompressBlocks(img, 30*1024)
	wantBlocks := (len(img) + 30*1024 - 1) / (30 * 1024)
	if len(blocks) != wantBlocks {
		t.Errorf("blocks = %d, want %d", len(blocks), wantBlocks)
	}
	for i, b := range blocks {
		if b.RawLen > 30*1024 {
			t.Errorf("block %d raw length %d exceeds SRAM budget", i, b.RawLen)
		}
	}
	out, err := DecompressBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, img) {
		t.Fatal("block pipeline mismatch")
	}
	if CompressedSize(blocks) >= len(img) {
		t.Error("mixed image did not compress at all")
	}
}

func TestCompressBlocksPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CompressBlocks([]byte{1}, 0)
}

func TestDecompressBlocksPropagatesCorruption(t *testing.T) {
	blocks := CompressBlocks(bytes.Repeat([]byte("xyz"), 1000), 512)
	blocks[1].Data = blocks[1].Data[:len(blocks[1].Data)/2]
	if _, err := DecompressBlocks(blocks); err == nil {
		t.Error("corrupt block accepted")
	}
}

func TestCompressAppendsToDst(t *testing.T) {
	prefix := []byte{0xAB, 0xCD}
	out := Compress([]byte("hello world"), append([]byte(nil), prefix...))
	if !bytes.Equal(out[:2], prefix) {
		t.Error("Compress must append to dst")
	}
}

func BenchmarkCompressBitstreamLike(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	img := make([]byte, 579*1024)
	for i := 0; i < len(img)/8; i++ {
		img[rng.Intn(len(img))] = byte(rng.Intn(256))
	}
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(img, nil)
	}
}

func BenchmarkDecompress(b *testing.B) {
	data := bytes.Repeat([]byte("tinysdr firmware block"), 2000)
	comp := Compress(data, nil)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompressZeroRun pins the overlap-copy hot path of node image
// reassembly: a 30 kB all-zero block decodes as one long overlapping match.
func BenchmarkDecompressZeroRun(b *testing.B) {
	data := make([]byte, 30*1024)
	comp := Compress(data, nil)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompressFirmware pins the mixed literal/match path on
// structured firmware-like data.
func BenchmarkDecompressFirmware(b *testing.B) {
	data := bytes.Repeat([]byte("MODULE lora_demodulator PORT(clk, rst_n, iq_in, sym_out); "), 520)[:30*1024]
	comp := Compress(data, nil)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}
