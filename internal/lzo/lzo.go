// Package lzo implements the miniLZO-class block compressor tinySDR's OTA
// system uses (§3.4). Like miniLZO it is a byte-oriented LZ77 with a small
// hash-table match finder, a 64 KB window, unbounded run encoding, and a
// decompressor that needs no memory beyond the output buffer — the property
// that lets the MSP432 decompress 30 kB blocks in SRAM.
//
// The exact Oberhumer bit layout is proprietary-adjacent folklore; this
// package uses a documented equivalent encoding with the same asymptotics
// (long zero runs collapse to ~0.4%, incompressible data expands by <1%),
// which is what the §5.3 update-size results depend on.
//
// Stream format:
//
//	0x00..0x7F  literal run: token+1 bytes follow verbatim (1..128)
//	0x80..0xFE  match: length = (token & 0x7F) + minMatch, then 2-byte
//	            little-endian distance (1..65535); matches may overlap
//	            the output (distance < length encodes runs)
//	0xFF        extended match: varint length extension follows (each
//	            0xFF byte adds 255, a terminator byte adds its value),
//	            then the 2-byte distance
package lzo

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	minMatch = 3
	// tokenMaxLen is the longest match encodable without extension.
	tokenMaxLen = minMatch + 0x7E // 129
	maxDistance = 65535
	hashBits    = 14
	hashSize    = 1 << hashBits
)

// MaxCompressedSize returns the worst-case output size for n input bytes:
// one token per 128 literals plus slack.
func MaxCompressedSize(n int) int { return n + n/128 + 16 }

func hash4(v uint32) uint32 {
	return (v * 2654435761) >> (32 - hashBits)
}

// Compress appends the compressed form of src to dst and returns it.
// A nil dst allocates a right-sized buffer.
func Compress(src []byte, dst []byte) []byte {
	if dst == nil {
		dst = make([]byte, 0, MaxCompressedSize(len(src)))
	}
	var table [hashSize]int32
	for i := range table {
		table[i] = -1
	}
	litStart := 0
	i := 0
	flushLiterals := func(end int) {
		for litStart < end {
			run := end - litStart
			if run > 128 {
				run = 128
			}
			dst = append(dst, byte(run-1))
			dst = append(dst, src[litStart:litStart+run]...)
			litStart += run
		}
	}
	for i+4 <= len(src) {
		v := binary.LittleEndian.Uint32(src[i:])
		h := hash4(v)
		cand := table[h]
		table[h] = int32(i)
		if cand >= 0 && i-int(cand) <= maxDistance && src[cand] == src[i] && src[cand+1] == src[i+1] && src[cand+2] == src[i+2] {
			// Extend the match.
			length := minMatch
			for i+length < len(src) && src[int(cand)+length] == src[i+length] {
				length++
			}
			flushLiterals(i)
			dist := i - int(cand)
			if length <= tokenMaxLen {
				dst = append(dst, 0x80|byte(length-minMatch))
			} else {
				dst = append(dst, 0xFF)
				rem := length - tokenMaxLen
				for rem >= 255 {
					dst = append(dst, 0xFF)
					rem -= 255
				}
				dst = append(dst, byte(rem))
			}
			dst = append(dst, byte(dist), byte(dist>>8))
			i += length
			litStart = i
			continue
		}
		i++
	}
	flushLiterals(len(src))
	return dst
}

// Store encodes src as a literal-only stream: a valid stream for Decompress
// that performs no compression (≈0.8% size overhead). It is the baseline
// for measuring what miniLZO buys the OTA system.
func Store(src []byte) []byte {
	out := make([]byte, 0, len(src)+len(src)/128+1)
	for off := 0; off < len(src); off += 128 {
		end := min(off+128, len(src))
		out = append(out, byte(end-off-1))
		out = append(out, src[off:end]...)
	}
	return out
}

// StoreBlocks splits src into blockSize segments stored without compression.
func StoreBlocks(src []byte, blockSize int) []Block {
	if blockSize <= 0 {
		panic("lzo: block size must be positive")
	}
	var out []Block
	for start := 0; start < len(src); start += blockSize {
		end := min(start+blockSize, len(src))
		out = append(out, Block{RawLen: end - start, Data: Store(src[start:end])})
	}
	return out
}

// ErrCorrupt reports a malformed compressed stream.
var ErrCorrupt = errors.New("lzo: corrupt stream")

// initialCap bounds the speculative output allocation: the declared output
// length is attacker-controlled metadata (a manifest field), so nothing is
// allocated beyond this until the stream actually produces bytes.
const initialCap = 64 << 10

// Decompress expands src into a buffer of exactly outLen bytes. It fails on
// malformed streams, wrong lengths, or references outside the window. Memory
// use is the output buffer alone, matching the MCU constraint of §3.4; the
// buffer grows with the decoded stream rather than trusting outLen up
// front, so a hostile length cannot demand a multi-GB allocation before the
// first token is parsed. Callers that know their block size should prefer
// DecompressLimit and pass it as the cap.
func Decompress(src []byte, outLen int) ([]byte, error) {
	return DecompressLimit(src, outLen, outLen)
}

// DecompressLimit is Decompress with an explicit ceiling on the declared
// output length: a corrupt or hostile header whose outLen exceeds maxLen
// (the caller's known block size — ota.BlockSize, a trace blob's sample
// count) is rejected before any allocation or parsing.
func DecompressLimit(src []byte, outLen, maxLen int) ([]byte, error) {
	if outLen < 0 || outLen > maxLen {
		return nil, fmt.Errorf("lzo: declared output %d outside [0, %d]: %w", outLen, maxLen, ErrCorrupt)
	}
	out := make([]byte, 0, min(outLen, initialCap))
	i := 0
	for i < len(src) {
		token := src[i]
		i++
		if token < 0x80 {
			run := int(token) + 1
			if i+run > len(src) || len(out)+run > outLen {
				return nil, ErrCorrupt
			}
			out = grow(out, run, outLen)
			out = append(out, src[i:i+run]...)
			i += run
			continue
		}
		length := int(token&0x7F) + minMatch
		if token == 0xFF {
			length = tokenMaxLen
			for {
				if i >= len(src) {
					return nil, ErrCorrupt
				}
				b := src[i]
				i++
				length += int(b)
				if b != 0xFF {
					break
				}
			}
		}
		if i+2 > len(src) {
			return nil, ErrCorrupt
		}
		dist := int(src[i]) | int(src[i+1])<<8
		i += 2
		if dist == 0 || dist > len(out) {
			return nil, ErrCorrupt
		}
		if len(out)+length > outLen {
			return nil, ErrCorrupt
		}
		out = matchCopy(grow(out, length, outLen), dist, length)
	}
	if len(out) != outLen {
		return nil, fmt.Errorf("lzo: decompressed %d bytes, want %d", len(out), outLen)
	}
	return out, nil
}

// grow ensures capacity for n more bytes, doubling up to the validated
// output length so growth is amortized without ever over-allocating past
// what the stream is entitled to produce.
func grow(out []byte, n, outLen int) []byte {
	if cap(out)-len(out) >= n {
		return out
	}
	newCap := min(max(2*cap(out), len(out)+n), outLen)
	bigger := make([]byte, len(out), newCap)
	copy(bigger, out)
	return bigger
}

// matchCopy extends out by length bytes copied from dist bytes back. out
// must already have the capacity (see grow). Non-overlapping matches are a
// single copy; overlapping ones (runs with period dist) seed one period and
// double it, so a long zero-run match costs O(log) copies instead of one
// byte per iteration — the node reassembly hot path. Very short periods
// stay byte-wise: the doubling bookkeeping costs more than it saves there.
func matchCopy(out []byte, dist, length int) []byte {
	n := len(out)
	out = out[:n+length]
	start := n - dist
	switch {
	case dist >= length:
		copy(out[n:], out[start:start+length])
	case dist >= 8:
		copy(out[n:n+dist], out[start:n])
		for c := dist; c < length; {
			chunk := min(c, length-c)
			copy(out[n+c:n+c+chunk], out[n:n+c])
			c += chunk
		}
	default:
		for k := 0; k < length; k++ {
			out[n+k] = out[start+k]
		}
	}
	return out
}

// Block is one independently compressed segment of a firmware image.
type Block struct {
	// RawLen is the uncompressed length.
	RawLen int
	// Data is the compressed bytes.
	Data []byte
}

// CompressBlocks splits src into blockSize segments and compresses each
// independently — the §3.4 scheme that bounds MCU memory to one block.
func CompressBlocks(src []byte, blockSize int) []Block {
	if blockSize <= 0 {
		panic("lzo: block size must be positive")
	}
	var out []Block
	for start := 0; start < len(src); start += blockSize {
		end := min(start+blockSize, len(src))
		out = append(out, Block{RawLen: end - start, Data: Compress(src[start:end], nil)})
	}
	return out
}

// DecompressBlocks reassembles an image from its blocks.
func DecompressBlocks(blocks []Block) ([]byte, error) {
	var out []byte
	for i, b := range blocks {
		raw, err := Decompress(b.Data, b.RawLen)
		if err != nil {
			return nil, fmt.Errorf("lzo: block %d: %w", i, err)
		}
		out = append(out, raw...)
	}
	return out, nil
}

// CompressedSize sums the payload bytes of a block set.
func CompressedSize(blocks []Block) int {
	var n int
	for _, b := range blocks {
		n += len(b.Data)
	}
	return n
}
