package tinysdr

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates its experiment from the simulation models (quick Monte-Carlo
// settings) and reports the headline metrics alongside the usual ns/op, so
// `go test -bench=.` doubles as a full reproduction run. The authoritative
// high-trial numbers come from `go run ./cmd/tinysdr-eval -run all`.

import (
	"testing"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/eval"
	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/phy"
)

func benchExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	e, ok := eval.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := eval.Config{Quick: true, Seed: 1}
	var last *eval.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.StopTimer()
	for _, m := range metrics {
		if v, ok := last.Metrics[m]; ok {
			b.ReportMetric(v, m)
		} else {
			b.Fatalf("metric %q missing from %s", m, id)
		}
	}
}

// BenchmarkTable1PlatformComparison regenerates Table 1 (platform
// comparison); headline: 30 µW sleep, 10,000x below existing SDRs.
func BenchmarkTable1PlatformComparison(b *testing.B) {
	benchExperiment(b, "table1", "tinysdr_sleep_uW", "sleep_advantage_x")
}

// BenchmarkFig2RadioModulePower regenerates Fig. 2 (radio module power):
// 179 mW TX @14 dBm, 59 mW RX.
func BenchmarkFig2RadioModulePower(b *testing.B) {
	benchExperiment(b, "fig2", "tinysdr_tx14_mW", "tinysdr_rx_mW")
}

// BenchmarkTable2IQRadioModules regenerates Table 2 (I/Q radio survey).
func BenchmarkTable2IQRadioModules(b *testing.B) {
	benchExperiment(b, "table2", "at86rf215_rx_mW")
}

// BenchmarkTable3PowerDomains regenerates Table 3 (power domains).
func BenchmarkTable3PowerDomains(b *testing.B) {
	benchExperiment(b, "table3", "domains")
}

// BenchmarkTable4OperationTimings regenerates Table 4 by executing the
// sleep/wake/turnaround transitions on the simulated clock.
func BenchmarkTable4OperationTimings(b *testing.B) {
	benchExperiment(b, "table4", "sleep_to_radio_ms", "tx_to_rx_ms", "freq_switch_ms")
}

// BenchmarkTable5CostBreakdown regenerates Table 5 ($54.53 per unit).
func BenchmarkTable5CostBreakdown(b *testing.B) {
	benchExperiment(b, "table5", "total_usd")
}

// BenchmarkFig8SingleToneSpectrum regenerates Fig. 8: the FPGA NCO's
// single-tone spectrum with no unexpected harmonics.
func BenchmarkFig8SingleToneSpectrum(b *testing.B) {
	benchExperiment(b, "fig8", "sfdr_dB")
}

// BenchmarkFig9TransmitPower regenerates Fig. 9: the end-to-end transmit
// power sweep (231 mW @0 dBm, 283 mW @14 dBm, flat below 0 dBm).
func BenchmarkFig9TransmitPower(b *testing.B) {
	benchExperiment(b, "fig9", "p0dBm_mW", "p14dBm_mW")
}

// BenchmarkFig10LoRaModulatorPER regenerates Fig. 10: modulator PER vs
// RSSI against the SX1276, -126 dBm sensitivity at SF8/BW125.
func BenchmarkFig10LoRaModulatorPER(b *testing.B) {
	benchExperiment(b, "fig10", "sens_TinySDR_bw125_dBm")
}

// BenchmarkFig11LoRaDemodulatorSER regenerates Fig. 11: demodulator
// chirp-symbol error rate vs RSSI.
func BenchmarkFig11LoRaDemodulatorSER(b *testing.B) {
	benchExperiment(b, "fig11", "sens_bw125_dBm")
}

// BenchmarkTable6FPGAUtilization regenerates Table 6: LoRa modem LUT
// usage per spreading factor (976 TX; 2656-2818 RX).
func BenchmarkTable6FPGAUtilization(b *testing.B) {
	benchExperiment(b, "table6", "rx_luts_sf8", "tx_luts_sf8")
}

// BenchmarkFig12BLEBER regenerates Fig. 12: BLE beacon BER vs RSSI,
// -94 dBm sensitivity.
func BenchmarkFig12BLEBER(b *testing.B) {
	benchExperiment(b, "fig12", "sensitivity_dBm")
}

// BenchmarkFig13BLEBeaconTiming regenerates Fig. 13: the three-channel
// advertising burst with 220 µs hop gaps.
func BenchmarkFig13BLEBeaconTiming(b *testing.B) {
	benchExperiment(b, "fig13", "gap1_us", "gap2_us")
}

// BenchmarkFig14OTAProgrammingCDF regenerates Fig. 14: OTA programming
// time CDFs on the 20-node campus (LoRa 150 s, BLE 59 s, MCU 39 s means).
func BenchmarkFig14OTAProgrammingCDF(b *testing.B) {
	benchExperiment(b, "fig14", "mean_s_fpga_lora", "mean_s_fpga_ble", "mean_s_mcu")
}

// BenchmarkFig15aConcurrentEqualPower regenerates Fig. 15a: concurrent
// orthogonal LoRa at equal received power.
func BenchmarkFig15aConcurrentEqualPower(b *testing.B) {
	benchExperiment(b, "fig15a", "loss125_dB", "loss250_dB")
}

// BenchmarkFig15bConcurrentInterference regenerates Fig. 15b: the
// interference-power sweep with its knee near -116 dBm.
func BenchmarkFig15bConcurrentInterference(b *testing.B) {
	benchExperiment(b, "fig15b", "knee_dBm")
}

// BenchmarkSleepPower regenerates the §5.1 sleep-power measurement.
func BenchmarkSleepPower(b *testing.B) {
	benchExperiment(b, "sleep", "sleep_uW")
}

// BenchmarkLoRaPacketPower regenerates the §5.2 LoRa packet power
// measurements (TX 287 mW / radio 179 mW; RX 186 mW / radio 59 mW).
func BenchmarkLoRaPacketPower(b *testing.B) {
	benchExperiment(b, "lorapower", "tx_total_mW", "rx_total_mW")
}

// BenchmarkBLEBatteryLife regenerates the §5.2 battery projection:
// >2 years at one beacon per second on 1000 mAh.
func BenchmarkBLEBatteryLife(b *testing.B) {
	benchExperiment(b, "blebattery", "bypass_years", "fpga_years")
}

// BenchmarkOTACompression regenerates the §5.3 compression results
// (579→99 kB LoRa, 579→40 kB BLE, 78→24 kB MCU; decompress ≤450 ms).
func BenchmarkOTACompression(b *testing.B) {
	benchExperiment(b, "compression", "decompress_ms")
}

// BenchmarkOTAEnergy regenerates the §5.3 energy budget (6144/2342 mJ per
// update; 2100/5600 updates per battery; 71/27 µW at one update per day).
func BenchmarkOTAEnergy(b *testing.B) {
	benchExperiment(b, "otaenergy", "lora_J", "ble_J")
}

// BenchmarkConcurrentResources regenerates the §6 resource/power figures
// for parallel demodulation (17% LUTs, 207 mW).
func BenchmarkConcurrentResources(b *testing.B) {
	benchExperiment(b, "concurrentres", "util_pct", "power_mW")
}

// BenchmarkAblationBroadcast measures the §7 broadcast-MAC extension
// against the paper's sequential fleet programming.
func BenchmarkAblationBroadcast(b *testing.B) {
	benchExperiment(b, "ablation-broadcast", "speedup_x")
}

// BenchmarkAblationPacketSize sweeps the §5.3 packet-size design point.
func BenchmarkAblationPacketSize(b *testing.B) {
	benchExperiment(b, "ablation-packet", "s_60_strong")
}

// BenchmarkAblationCompression measures what miniLZO buys the OTA system.
func BenchmarkAblationCompression(b *testing.B) {
	benchExperiment(b, "ablation-compression", "lzo_s", "stored_s")
}

// BenchmarkAblationBlockSize sweeps the §3.4 compression block size.
func BenchmarkAblationBlockSize(b *testing.B) {
	benchExperiment(b, "ablation-blocksize", "kB_30")
}

// BenchmarkAblationRateAdaptation quantifies the §7 rate-adaptation
// research question on the campus testbed.
func BenchmarkAblationRateAdaptation(b *testing.B) {
	benchExperiment(b, "ablation-adr", "adr_mJ")
}

// BenchmarkCoexistenceSweep regenerates the composed-scenario coexistence
// experiment (PER vs live LoRa/BLE interferer power and carrier offset).
func BenchmarkCoexistenceSweep(b *testing.B) {
	benchExperiment(b, "coexistence", "coex_lora_knee_dBm", "coex_ble_knee_dBm")
}

// BenchmarkMobilitySweep regenerates the mobility experiment: the PER
// cliff where Doppler crosses half a chirp bin (≈80 m/s at SF8/BW125).
func BenchmarkMobilitySweep(b *testing.B) {
	benchExperiment(b, "mobility", "mob_knee_mps", "mob_per_static")
}

// BenchmarkScenarioSymbolDemod pins the composed-scenario hot path: one
// per-trial Reset plus ApplyInto of a full fading + CFO + interferer +
// noise chain and the aligned symbol demod, all in steady-state scratch —
// driven through the protocol-agnostic Modem interface (the
// phy.SymbolStreamer capability), not the concrete demodulator. The
// contract is 0 allocs/op — neither the scenario engine nor interface
// dispatch may give back what PR 1's zero-allocation DSP path bought.
func BenchmarkScenarioSymbolDemod(b *testing.B) {
	p := lora.DefaultParams()
	m, err := NewModem("lora")
	if err != nil {
		b.Fatal(err)
	}
	demod, ok := m.(phy.SymbolStreamer)
	if !ok {
		b.Fatal("lora modem does not expose the aligned-symbol hot path")
	}
	mod, err := lora.NewModulator(p)
	if err != nil {
		b.Fatal(err)
	}
	shifts := []int{37, 129, 5, 201}
	sig, err := mod.ModulateSymbols(shifts)
	if err != nil {
		b.Fatal(err)
	}
	interf, err := mod.ModulateSymbols([]int{88, 12})
	if err != nil {
		b.Fatal(err)
	}
	sc := channel.NewScenario(
		channel.NewGain(-110),
		channel.NewFlatFading(10),
		channel.NewCFO(100, 50, 10, p.SampleRate()),
		channel.NewInterferer("lora", interf, -120, 256),
		channel.NewNoise(-116),
	)
	rx := make(iq.Samples, len(sig))
	dst := make([]int, 0, len(shifts))
	sc.Reset(1, 0)
	demod.DemodAlignedSymbolsInto(dst, sc.ApplyInto(rx, sig)) // warm scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Reset(1, i)
		demod.DemodAlignedSymbolsInto(dst, sc.ApplyInto(rx, sig))
	}
}
