// Quickstart: the protocol-agnostic Modem/Link pipeline. A LoRa packet
// crosses a composed channel 6 dB above the platform's -126 dBm
// sensitivity; swapping "lora" for "ble" or "backscatter" (or any later
// phy registration) changes nothing else about the program.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/uwsdr/tinysdr"
)

func main() {
	// Any registered PHY by name — see tinysdr.RegisteredPHYs().
	tx, err := tinysdr.NewModem("lora")
	if err != nil {
		log.Fatal(err)
	}
	rx, err := tinysdr.NewModem("lora")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s modem: %.0f kHz baseband, sensitivity %.0f dBm (%s chain)\n",
		tx.Name(), tx.SampleRate()/1e3, rx.SensitivityDBm(), rx.Radio().Name)

	// A reproducible link condition: a budget 6 dB above whatever this
	// modem's sensitivity is (-120 dBm for LoRa), plus its own receiver
	// noise floor — both from the same radio profile, and both still
	// correct after swapping the protocol name above.
	sc := tinysdr.NewChannelScenario(
		tinysdr.NewGainStage(rx.SensitivityDBm()+6),
		tinysdr.NewNoiseStage(rx.NoiseFloorDBm()),
	)
	link, err := tinysdr.OpenLink(tx, rx, sc, 42)
	if err != nil {
		log.Fatal(err)
	}

	// One packet through modulate → channel → demodulate.
	pkt, err := link.Send([]byte("hello from tinySDR"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("received %q\n", pkt)

	// And a measured link: PER and observed RSSI over 50 packets,
	// bit-identical for this seed wherever it runs.
	stats, err := link.Run([]byte("hello from tinySDR"), 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("50 packets at %.1f dBm measured RSSI: PER %.0f%%\n",
		stats.RSSIdBm, stats.PER*100)

	// The board-level story is still one call away: the same PHY runs on
	// a simulated device with its power model.
	dev := tinysdr.New(tinysdr.Config{ID: 1})
	dev.Sleep()
	fmt.Printf("device sleep power: %.1f µW\n", dev.SystemPowerW()*1e6)
}
