// Quickstart: two tinySDR devices exchange a LoRa packet over an AWGN link.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/uwsdr/tinysdr"
)

func main() {
	tx := tinysdr.New(tinysdr.Config{ID: 1})
	rx := tinysdr.New(tinysdr.Config{ID: 2})

	// The paper's LoRa case study configuration: SF8, 125 kHz, CR 4/5.
	p := tinysdr.DefaultLoRaParams()
	if err := tx.ConfigureLoRa(p); err != nil {
		log.Fatal(err)
	}
	if err := rx.ConfigureLoRa(p); err != nil {
		log.Fatal(err)
	}

	air, err := tx.TransmitLoRa([]byte("hello from tinySDR"), 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transmitted %d samples, %.0f mW system draw during TX\n",
		len(air), tx.SystemPowerW()*1e3)

	// Receive at -120 dBm — 6 dB above the platform's -126 dBm sensitivity.
	ch := tinysdr.NewChannel(42, tinysdr.LoRaNoiseFloorDBm(p))
	pkt, err := rx.ReceiveLoRa(ch.Apply(air, -120))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("received %q (CRC ok: %v, FEC clean: %v)\n", pkt.Payload, pkt.CRCOK, pkt.FECOK)

	// Duty-cycle story: deep sleep draws 30 µW.
	rx.Sleep()
	fmt.Printf("sleep power: %.1f µW\n", rx.SystemPowerW()*1e6)
}
