// backscatter demonstrates the §7 low-power reader direction: a tinySDR
// acts as both exciter (its single-tone generator) and reader (its I/Q
// receiver) for a backscatter tag, with no custom reader hardware.
//
// Run with: go run ./examples/backscatter
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/uwsdr/tinysdr"
)

func main() {
	cfg := tinysdr.DefaultBackscatterConfig()
	fmt.Printf("exciter tone + %v kHz subcarrier tag at %v kbps\n\n",
		cfg.SubcarrierHz/1e3, cfg.BitRate/1e3)

	// The tag reflects 40 dB below the exciter's self-interference.
	tag := &tinysdr.BackscatterTag{Config: cfg, Reflection: 0.01}
	rng := rand.New(rand.NewSource(1))
	bits := make([]int, 96)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	reflected, err := tag.Backscatter(bits)
	if err != nil {
		log.Fatal(err)
	}

	// Reader input: full-strength exciter leak + tag + receiver noise.
	rx := tinysdr.BackscatterExcite(cfg, len(reflected))
	rx.Add(reflected)
	rx.Add(tinysdr.NewChannel(7, -90).Noise(len(rx)))

	reader, err := tinysdr.NewBackscatterReader(cfg)
	if err != nil {
		log.Fatal(err)
	}
	got, err := reader.Demodulate(rx, len(bits))
	if err != nil {
		log.Fatal(err)
	}
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	fmt.Printf("decoded %d tag bits with %d errors through 40 dB self-interference\n", len(bits), errs)
	fmt.Println("the subcarrier-orthogonal detector needs no interference canceller")
}
