// ota-campus pushes a firmware update over the air to the 20-node campus
// testbed — the §3.4/§5.3 workflow: compress on the AP, transfer in 60-byte
// LoRa packets with ACKs, decompress and reprogram on each node.
//
// Run with: go run ./examples/ota-campus
package main

import (
	"fmt"
	"log"

	"github.com/uwsdr/tinysdr"
)

func main() {
	// A BLE beacon bitstream update (579 kB raw, ~40 kB compressed).
	design := tinysdr.BLEDesign()
	image := tinysdr.SynthBitstream(design)
	update, err := tinysdr.BuildUpdate(tinysdr.TargetFPGA, image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update: %s design, %d kB raw -> %d kB compressed, %d packets\n\n",
		design.Name, len(image)/1024, update.CompressedSize()/1024, len(update.Chunks))

	campus := tinysdr.NewTestbed(1)
	results := campus.ProgramAll(update, design)

	fmt.Printf("%4s  %8s  %9s  %9s  %5s\n", "node", "distance", "RSSI", "duration", "retx")
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("%4d  %7.0fm  %7.1fdBm  FAILED: %v\n", r.NodeID, r.Distance, r.RSSIdBm, r.Err)
			continue
		}
		fmt.Printf("%4d  %7.0fm  %7.1fdBm  %8.1fs  %5d\n",
			r.NodeID, r.Distance, r.RSSIdBm, r.Report.Duration.Seconds(), r.Report.Retransmissions)
	}

	fmt.Println("\nprogramming-time CDF:")
	for _, p := range tinysdr.TestbedCDF(results) {
		fmt.Printf("  %5.2f min  %4.0f%%\n", p.Duration.Minutes(), p.Fraction*100)
	}
}
