// lora-link sweeps a LoRa link across distance with the campus propagation
// model and measures the packet error rate at each range — the workload the
// paper's intro motivates: evaluating protocol configurations at scale
// without building hardware.
//
// Run with: go run ./examples/lora-link
package main

import (
	"fmt"
	"log"

	"github.com/uwsdr/tinysdr"
)

func main() {
	p := tinysdr.DefaultLoRaParams() // SF8, BW125, CR 4/5
	tx := tinysdr.New(tinysdr.Config{ID: 1})
	rx := tinysdr.New(tinysdr.Config{ID: 2})
	if err := tx.ConfigureLoRa(p); err != nil {
		log.Fatal(err)
	}
	if err := rx.ConfigureLoRa(p); err != nil {
		log.Fatal(err)
	}

	model := tinysdr.PathLoss{FreqHz: 915e6, Exponent: 2.9}
	sens := tinysdr.LoRaSensitivityDBm(p.SF, p.BW)
	fmt.Printf("SF%d/BW%.0fkHz, TX 14 dBm, sensitivity %.0f dBm\n", p.SF, p.BW/1e3, sens)
	fmt.Printf("predicted range: %.0f m\n\n", model.RangeFor(14, 2, 0, sens))

	air, err := tx.TransmitLoRa([]byte("ping"), 14)
	if err != nil {
		log.Fatal(err)
	}

	const packets = 40
	fmt.Printf("%8s  %9s  %6s\n", "distance", "RSSI", "PER")
	for _, dist := range []float64{1000, 3000, 5000, 5800, 6200, 6600, 7000} {
		rssi := model.RSSIdBm(14, 2, 0, dist, 0)
		ch := tinysdr.NewChannel(int64(dist), tinysdr.LoRaNoiseFloorDBm(p))
		failures := 0
		for i := 0; i < packets; i++ {
			pkt, err := rx.ReceiveLoRa(ch.Apply(air, rssi))
			if err != nil || !pkt.CRCOK {
				failures++
			}
		}
		fmt.Printf("%7.0fm  %6.1fdBm  %5.0f%%\n", dist, rssi, 100*float64(failures)/packets)
	}
}
