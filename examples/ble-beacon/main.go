// ble-beacon transmits BLE advertisements from a tinySDR device across the
// three advertising channels and verifies them with the discriminator
// receiver, reporting the 220 µs hop timing of Fig. 13.
//
// Run with: go run ./examples/ble-beacon
package main

import (
	"fmt"
	"log"

	"github.com/uwsdr/tinysdr"
)

func main() {
	beacon := tinysdr.Beacon{
		AdvAddress: [6]byte{0xC0, 0xFF, 0xEE, 0x10, 0x20, 0x30},
		AdvData:    []byte{0x02, 0x01, 0x06, 0x05, 0xFF, 0x55, 0x44, 0x33, 0x22},
	}

	// Device-level burst: three channels with the radio's retune gap.
	d := tinysdr.New(tinysdr.Config{ID: 1})
	if err := d.ConfigureBLE(beacon); err != nil {
		log.Fatal(err)
	}
	events, err := d.TransmitBeaconBurst(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("advertising burst:")
	for i, e := range events {
		fmt.Printf("  ch %d (%.0f MHz): %v .. %v", e.Channel.Number, e.Channel.FreqHz/1e6, e.Start, e.End)
		if i > 0 {
			fmt.Printf("  (gap %v)", e.Start-events[i-1].End)
		}
		fmt.Println()
	}
	fmt.Printf("system draw during burst: %.0f mW\n\n", d.SystemPowerW()*1e3)

	// Waveform-level check: a sniffer decodes each channel's beacon.
	adv, err := tinysdr.NewAdvertiser(beacon, 4)
	if err != nil {
		log.Fatal(err)
	}
	demod, err := tinysdr.NewBLEDemodulator(4)
	if err != nil {
		log.Fatal(err)
	}
	for _, ch := range []int{37, 38, 39} {
		wave, err := adv.Mod.ModulateBeacon(beacon, ch)
		if err != nil {
			log.Fatal(err)
		}
		awgn := tinysdr.NewChannel(int64(ch), -98)
		got, err := demod.Receive(awgn.Apply(wave, -70), ch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sniffer on ch %d: addr %x, %d data bytes ok\n", ch, got.AdvAddress, len(got.AdvData))
	}
}
