// localization demonstrates the §7 research direction: tinySDR anchors use
// their raw I/Q access to measure carrier phase across multiple
// frequencies, turn phase into range, and trilaterate a target — the
// distributed sensing system the paper sketches.
//
// Run with: go run ./examples/localization
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/uwsdr/tinysdr"
)

func main() {
	// Four carriers across the 900 MHz band: 2 MHz minimum spacing gives
	// a 150 m unambiguous range; the 16 MHz span gives fine resolution.
	ranger, err := tinysdr.NewRanger([]float64{902e6, 904e6, 910e6, 918e6}, 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("carriers: 902/904/910/918 MHz, unambiguous range %.0f m\n\n",
		ranger.UnambiguousRange())

	// Four tinySDR anchors on the corners of a courtyard.
	sys := &tinysdr.LocalizationSystem{
		Anchors: []tinysdr.Anchor{{X: 0, Y: 0}, {X: 120, Y: 0}, {X: 0, Y: 120}, {X: 120, Y: 120}},
		Ranger:  ranger,
	}
	rssiAt := func(d float64) float64 { return -55 - 20*math.Log10(math.Max(d, 1)) }

	fmt.Printf("%12s  %14s  %8s\n", "true (x,y)", "estimate (x,y)", "error")
	for _, target := range [][2]float64{{20, 30}, {60, 60}, {100, 15}, {35, 95}} {
		x, y, err := sys.Locate(target[0], target[1], rssiAt, -100, 42)
		if err != nil {
			log.Fatal(err)
		}
		e := math.Hypot(x-target[0], y-target[1])
		fmt.Printf("(%4.0f,%4.0f)   (%5.1f,%6.1f)   %5.2f m\n", target[0], target[1], x, y, e)
	}
}
