// concurrent-rx demonstrates the §6 research study: one tinySDR endpoint
// decoding two concurrent LoRa transmissions with orthogonal chirp slopes
// (SF8 at 125 kHz and 250 kHz) from a single I/Q stream — first over a
// plain AWGN channel, then through the composable scenario engine
// (ParseScenario / NewChannelScenario), which replays the same superposed
// stream under Rician fading, oscillator CFO and a live BLE interferer.
//
// Run with: go run ./examples/concurrent-rx
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/uwsdr/tinysdr"
)

func main() {
	const rate = 250e3 // common sample rate

	p1 := tinysdr.DefaultLoRaParams() // SF8, BW125
	p2 := tinysdr.DefaultLoRaParams()
	p2.BW = 250e3

	dec, err := tinysdr.NewConcurrentDecoder(rate, []tinysdr.LoRaParams{p1, p2})
	if err != nil {
		log.Fatal(err)
	}
	tx1, err := tinysdr.NewConcurrentTransmitter(rate, p1)
	if err != nil {
		log.Fatal(err)
	}
	tx2, err := tinysdr.NewConcurrentTransmitter(rate, p2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chirp slopes: %.2e vs %.2e Hz/s (ratio %.0fx) -> near-orthogonal\n\n",
		dec.Slope(0), dec.Slope(1), dec.Slope(1)/dec.Slope(0))

	// Random symbol streams from both transmitters.
	rng := rand.New(rand.NewSource(7))
	s1 := make([]int, 30)
	s2 := make([]int, 60)
	for i := range s1 {
		s1[i] = rng.Intn(256)
	}
	for i := range s2 {
		s2[i] = rng.Intn(256)
	}
	w1, err := tx1.ModulateSymbols(s1)
	if err != nil {
		log.Fatal(err)
	}
	w2, err := tx2.ModulateSymbols(s2)
	if err != nil {
		log.Fatal(err)
	}

	// Superpose at equal power near sensitivity, plus receiver noise.
	rssi := tinysdr.LoRaSensitivityDBm(8, 125e3) + 6
	ch := tinysdr.NewChannel(1, -113) // floor for 250 kHz at NF 7
	rx := ch.ApplyMulti(len(w1), []tinysdr.Samples{w1, w2}, []float64{rssi, rssi}, []int{0, 0})

	got := dec.DemodAligned(rx)
	count := func(got, want []int) int {
		errs := 0
		for i := range want {
			if got[i] != want[i] {
				errs++
			}
		}
		return errs
	}
	fmt.Printf("both received at %.1f dBm:\n", rssi)
	fmt.Printf("  chain BW125: %d/%d symbol errors\n", count(got[0], s1), len(s1))
	fmt.Printf("  chain BW250: %d/%d symbol errors\n", count(got[1], s2), len(s2))
	fmt.Println("\nboth concurrent transmissions decoded on one endpoint — the §6 result.")

	// The same superposition through the composable scenario engine: the
	// clean sum of both transmitters becomes the "signal", and the
	// composed stages impose Rician fading, oscillator CFO and a live BLE
	// beacon bleeding into the band. Reset(seed, trial) makes every
	// condition reproducible — sweep trial to walk fading realizations.
	clean := tinysdr.NewChannel(2, -200).ApplyMulti(len(w1),
		[]tinysdr.Samples{w1, w2}, []float64{rssi, rssi}, []int{0, 0})
	spec, err := tinysdr.ParseScenario("fading=rician:6,cfo=150,drift=10,interferer=ble:-106")
	if err != nil {
		log.Fatal(err)
	}
	// Gain targets the composite's own mean power (two equal streams sum
	// to rssi+3 dB), so each stream stays at rssi like the AWGN baseline.
	sc, err := spec.Build(tinysdr.ScenarioLink{SampleRate: rate, RSSIdBm: clean.PowerDBm(), FloorDBm: -113})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplayed through %s:\n", sc)
	for trial := 0; trial < 3; trial++ {
		sc.Reset(1, trial)
		faded := dec.DemodAligned(sc.Apply(clean))
		fmt.Printf("  trial %d: BW125 %d/%d, BW250 %d/%d symbol errors\n",
			trial, count(faded[0], s1), len(s1), count(faded[1], s2), len(s2))
	}
	fmt.Println("\ncoexistence conditions composed from stages — see -scenario on cmd/tinysdr-eval.")
}
