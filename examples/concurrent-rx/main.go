// concurrent-rx demonstrates the §6 research study: one tinySDR endpoint
// decoding two concurrent LoRa transmissions with orthogonal chirp slopes
// (SF8 at 125 kHz and 250 kHz) from a single I/Q stream.
//
// Run with: go run ./examples/concurrent-rx
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/uwsdr/tinysdr"
)

func main() {
	const rate = 250e3 // common sample rate

	p1 := tinysdr.DefaultLoRaParams() // SF8, BW125
	p2 := tinysdr.DefaultLoRaParams()
	p2.BW = 250e3

	dec, err := tinysdr.NewConcurrentDecoder(rate, []tinysdr.LoRaParams{p1, p2})
	if err != nil {
		log.Fatal(err)
	}
	tx1, err := tinysdr.NewConcurrentTransmitter(rate, p1)
	if err != nil {
		log.Fatal(err)
	}
	tx2, err := tinysdr.NewConcurrentTransmitter(rate, p2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chirp slopes: %.2e vs %.2e Hz/s (ratio %.0fx) -> near-orthogonal\n\n",
		dec.Slope(0), dec.Slope(1), dec.Slope(1)/dec.Slope(0))

	// Random symbol streams from both transmitters.
	rng := rand.New(rand.NewSource(7))
	s1 := make([]int, 30)
	s2 := make([]int, 60)
	for i := range s1 {
		s1[i] = rng.Intn(256)
	}
	for i := range s2 {
		s2[i] = rng.Intn(256)
	}
	w1, err := tx1.ModulateSymbols(s1)
	if err != nil {
		log.Fatal(err)
	}
	w2, err := tx2.ModulateSymbols(s2)
	if err != nil {
		log.Fatal(err)
	}

	// Superpose at equal power near sensitivity, plus receiver noise.
	rssi := tinysdr.LoRaSensitivityDBm(8, 125e3) + 6
	ch := tinysdr.NewChannel(1, -113) // floor for 250 kHz at NF 7
	rx := ch.ApplyMulti(len(w1), []tinysdr.Samples{w1, w2}, []float64{rssi, rssi}, []int{0, 0})

	got := dec.DemodAligned(rx)
	count := func(got, want []int) int {
		errs := 0
		for i := range want {
			if got[i] != want[i] {
				errs++
			}
		}
		return errs
	}
	fmt.Printf("both received at %.1f dBm:\n", rssi)
	fmt.Printf("  chain BW125: %d/%d symbol errors\n", count(got[0], s1), len(s1))
	fmt.Printf("  chain BW250: %d/%d symbol errors\n", count(got[1], s2), len(s2))
	fmt.Println("\nboth concurrent transmissions decoded on one endpoint — the §6 result.")
}
