package tinysdr

// Tests for the public API: the exported-surface golden check (every
// facade symbol, diffed against testdata/api_surface.golden so breakage
// fails CI loudly), the protocol-agnostic Modem/Link surface, and the
// extension features (§7).

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"math"
	"os"
	"sort"
	"strings"
	"testing"

	"github.com/uwsdr/tinysdr/internal/ota"
)

var updateSurface = flag.Bool("update-api-surface", false,
	"rewrite testdata/api_surface.golden from the current exports")

// exportedSurface parses every non-test file of the facade package and
// returns one "kind name" line per exported top-level symbol, sorted.
func exportedSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["tinysdr"]
	if !ok {
		t.Fatalf("package tinysdr not found (got %v)", pkgs)
	}
	var lines []string
	add := func(kind, name string) {
		if ast.IsExported(name) {
			lines = append(lines, kind+" "+name)
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil {
					add("func", d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						add("type", s.Name.Name)
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, n := range s.Names {
							add(kind, n.Name)
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

// TestFacadeAPISurfaceGolden diffs the exported surface against the
// committed golden list: an accidental removal, rename or addition fails
// here before any caller breaks. Regenerate intentionally with
//
//	go test . -run TestFacadeAPISurfaceGolden -update-api-surface
func TestFacadeAPISurfaceGolden(t *testing.T) {
	got := []byte(strings.Join(exportedSurface(t), "\n") + "\n")
	const golden = "testdata/api_surface.golden"
	if *updateSurface {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d symbols)", golden, bytes.Count(got, []byte("\n")))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden export list (run with -update-api-surface): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("exported API surface changed.\nIf intentional, update MIGRATION.md and run:\n  go test . -run TestFacadeAPISurfaceGolden -update-api-surface\ndiff:\n%s",
			surfaceDiff(string(want), string(got)))
	}
}

// surfaceDiff renders a +/- line diff of two sorted symbol lists.
func surfaceDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for l := range wantSet {
		if !gotSet[l] {
			fmt.Fprintf(&b, "  - %s\n", l)
		}
	}
	for l := range gotSet {
		if !wantSet[l] {
			fmt.Fprintf(&b, "  + %s\n", l)
		}
	}
	return b.String()
}

// Compile-time exercise of every exported symbol, in golden-list order: a
// facade rename or removal breaks this block (and the golden diff above)
// before it breaks any downstream caller.
var _ = []any{
	CR45, CR46, CR47, CR48,
	FleetBroadcast, FleetUnicast,
	TargetFPGA, TargetMCU,
	AdaptSF, BLEDesign, BLEInterfererWaveform, BackscatterExcite,
	BuildUpdate, DefaultBackscatterConfig, DefaultLoRaParams,
	InterfererWaveform, LoRaDesign, LoRaInterfererWaveform,
	LoRaNoiseFloorDBm, LoRaSensitivityDBm, New, NewABPSession,
	NewAdvertiser, NewBLEDemodulator, NewBLEModem, NewBackscatterModem,
	NewBackscatterReader, NewBroadcastOTASession, NewCFOStage, NewChannel,
	NewChannelScenario, NewConcurrentDecoder, NewConcurrentTransmitter,
	NewFlatFadingStage, NewFleetServer, NewGainStage, NewInterfererStage,
	NewLoRaModem, NewModem, NewNoiseStage, NewOTASession, NewRanger,
	NewTestbed, NewTestbedN, OpenLink, ParseScenario, RegisteredPHYs,
	RunFleetCampaign, SynthBitstream, SynthMCUFirmware, TestbedCDF,
	Trilaterate,
}

var (
	_ Advertiser
	_ Anchor
	_ BLEDemodulator
	_ BackscatterConfig
	_ BackscatterReader
	_ BackscatterTag
	_ Beacon
	_ BroadcastOTASession
	_ BroadcastTarget
	_ Channel
	_ ChannelScenario
	_ ChannelStage
	_ CodingRate
	_ ConcurrentDecoder
	_ ConcurrentTransmitter
	_ Config
	_ Design
	_ Device
	_ FleetNodeResult
	_ FleetResult
	_ FleetServer
	_ FleetSpec
	_ InterfererStage
	_ Link
	_ LinkStats
	_ LoRaPacket
	_ LoRaParams
	_ LoRaWANFrame
	_ LoRaWANSession
	_ LocalizationSystem
	_ Modem
	_ OTASession
	_ PathLoss
	_ RadioProfile
	_ Ranger
	_ Samples
	_ ScenarioLink
	_ ScenarioSpec
	_ Testbed
	_ TestbedResult
	_ Update
	_ UpdateTarget
)

// TestFacadeModemLink exercises the protocol-agnostic surface end to end:
// registry construction, typed constructors, link-budget anchors from one
// radio profile, and the Link pipeline for every registered PHY.
func TestFacadeModemLink(t *testing.T) {
	phys := RegisteredPHYs()
	if len(phys) < 3 {
		t.Fatalf("registered PHYs = %v, want at least lora/ble/backscatter", phys)
	}
	for _, name := range phys {
		tx, err := NewModem(name)
		if err != nil {
			t.Fatal(err)
		}
		rx, err := NewModem(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := NewChannelScenario(
			NewGainStage(rx.SensitivityDBm()+18),
			NewNoiseStage(rx.NoiseFloorDBm()),
		)
		link, err := OpenLink(tx, rx, sc, 42)
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := link.Send([]byte("hello"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(pkt) != "hello" {
			t.Errorf("%s: payload %q", name, pkt)
		}
		var stats LinkStats
		if stats, err = link.Run([]byte("hello"), 8); err != nil || stats.PER > 0.25 {
			t.Errorf("%s: stats %+v, err %v", name, stats, err)
		}
	}
	if _, err := NewModem("wifi"); err == nil {
		t.Error("unregistered modem accepted")
	}

	// Typed constructors share the registry modems' contract.
	lm, err := NewLoRaModem(DefaultLoRaParams())
	if err != nil {
		t.Fatal(err)
	}
	bm, err := NewBLEModem(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBackscatterModem(DefaultBackscatterConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLink(lm, bm, nil, 1); err == nil {
		t.Error("mismatched sample rates accepted")
	}
	if w, err := InterfererWaveform("backscatter", 125e3); err != nil || len(w) == 0 {
		t.Errorf("generic interferer waveform: %d samples, %v", len(w), err)
	}
}

// TestFacadeNoiseFigureConsistency is the regression test for the facade
// noise-figure mismatch: the sensitivity and noise-floor helpers must
// derive from one radio profile, and the modem they describe must agree.
func TestFacadeNoiseFigureConsistency(t *testing.T) {
	p := DefaultLoRaParams()
	m, err := NewLoRaModem(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.SensitivityDBm(), LoRaSensitivityDBm(p.SF, p.BW); got != want {
		t.Errorf("modem sensitivity %v != facade helper %v", got, want)
	}
	if got, want := m.NoiseFloorDBm(), LoRaNoiseFloorDBm(p); got != want {
		t.Errorf("modem noise floor %v != facade helper %v", got, want)
	}
	// Both helpers must imply the same noise figure: subtracting the
	// thermal+bandwidth terms from each must agree.
	nfFromSens := LoRaSensitivityDBm(p.SF, p.BW) - (-174 + 10*math.Log10(p.BW) - 5 - 2.5*float64(p.SF-6))
	nfFromFloor := LoRaNoiseFloorDBm(p) - (-174 + 10*math.Log10(p.SampleRate()))
	if math.Abs(nfFromSens-nfFromFloor) > 1e-9 {
		t.Errorf("mixed noise figures: %v from sensitivity, %v from floor", nfFromSens, nfFromFloor)
	}
	if rp := m.Radio(); rp.NoiseFigureDB != nfFromFloor {
		t.Errorf("radio profile NF %v, helpers imply %v", rp.NoiseFigureDB, nfFromFloor)
	}
}

func TestFacadeAdaptSF(t *testing.T) {
	if got := AdaptSF(-80, 125e3, 3); got != 7 {
		t.Errorf("strong link SF = %d, want 7", got)
	}
	if got := AdaptSF(-140, 125e3, 3); got != 12 {
		t.Errorf("dead link SF = %d, want 12", got)
	}
}

func TestFacadePathLoss(t *testing.T) {
	m := PathLoss{FreqHz: 915e6, Exponent: 2.9}
	if r := m.RangeFor(14, 2, 0, LoRaSensitivityDBm(8, 125e3)); r < 1000 {
		t.Errorf("LoRa range = %.0f m, want km scale", r)
	}
}

func TestFacadeLocalization(t *testing.T) {
	ranger, err := NewRanger([]float64{902e6, 904e6, 918e6}, 128)
	if err != nil {
		t.Fatal(err)
	}
	sys := &LocalizationSystem{
		Anchors: []Anchor{{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 0, Y: 60}},
		Ranger:  ranger,
	}
	x, y, err := sys.Locate(20, 25, func(d float64) float64 { return -65 }, -100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Hypot(x-20, y-25); e > 2 {
		t.Errorf("position error %.2f m", e)
	}
	// Direct trilateration is exposed too.
	if _, _, err := Trilaterate(sys.Anchors, []float64{32, 47.2, 40.3}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBackscatter(t *testing.T) {
	cfg := DefaultBackscatterConfig()
	tag := &BackscatterTag{Config: cfg, Reflection: 0.02}
	bits := []int{0, 1, 1, 0, 1, 0, 0, 1}
	reflected, err := tag.Backscatter(bits)
	if err != nil {
		t.Fatal(err)
	}
	rx := BackscatterExcite(cfg, len(reflected))
	rx.Add(reflected)
	reader, err := NewBackscatterReader(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reader.Demodulate(rx, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d wrong", i)
		}
	}
}

func TestFacadeBroadcastOTA(t *testing.T) {
	img := SynthMCUFirmware(8*1024, 1)
	u, err := BuildUpdate(TargetMCU, img)
	if err != nil {
		t.Fatal(err)
	}
	var targets []BroadcastTarget
	var devs []*Device
	for i := 0; i < 3; i++ {
		d := New(Config{ID: uint16(i + 1)})
		devs = append(devs, d)
		targets = append(targets, BroadcastTarget{Node: d.OTA, RSSIdBm: -85})
	}
	sess := NewBroadcastOTASession(targets, 2)
	rep, err := sess.ProgramFleet(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BroadcastPackets != len(u.Chunks) {
		t.Errorf("broadcast packets = %d", rep.BroadcastPackets)
	}
	for _, d := range devs {
		if err := d.OTA.VerifyImage(img, ota.TargetMCU); err != nil {
			t.Error(err)
		}
	}
}

func TestFacadeFleetCampaign(t *testing.T) {
	res, err := RunFleetCampaign(FleetSpec{
		Seed: 3, Nodes: 25, Mode: FleetBroadcast, ImageKB: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 25 || res.Shards != 2 {
		t.Fatalf("%d nodes in %d shards", len(res.Nodes), res.Shards)
	}
	if res.Failed != 0 {
		t.Errorf("%d nodes failed", res.Failed)
	}
	if srv := NewFleetServer(); srv == nil {
		t.Fatal("no fleet server")
	}
	if tb := NewTestbedN(3, 7); len(tb.Nodes) != 7 {
		t.Error("NewTestbedN size mismatch")
	}
}

func TestFacadeChaosCampaign(t *testing.T) {
	// The fault grammar round-trips through the facade and a faulted
	// quorum campaign completes with a classified taxonomy.
	spec, err := ParseFaultSpec("crash=0.0005,flashfail=0.01,desync=0.03:4")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Enabled() {
		t.Fatal("parsed fault spec injects nothing")
	}
	if plan := NewFaultPlan(spec, 1); plan == nil {
		t.Fatal("no fault plan")
	}
	res, err := RunFleetCampaignContext(context.Background(), FleetSpec{
		Seed: 3, Nodes: 20, Mode: FleetBroadcast, ImageKB: 8,
		Faults: spec.String(), Quorum: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.QuorumMet {
		t.Errorf("quorum not met: completion %.2f", res.CompletionFrac)
	}
	for _, n := range res.Nodes {
		if n.Err != "" && n.Class == "" {
			t.Errorf("node %d failed without a failure class: %s", n.ID, n.Err)
		}
	}
	if st := NewDropoutStage(1, 0); st.Name() != "dropout" {
		t.Errorf("dropout stage name %q", st.Name())
	}
}

func TestFacadeDeviceRecording(t *testing.T) {
	d := New(Config{ID: 1})
	d.AttachSDCard(1 << 20)
	if _, err := d.RecordSamples(1000); err != nil {
		t.Fatal(err)
	}
	if d.SDUsed() != 4000 {
		t.Errorf("SD used = %d", d.SDUsed())
	}
}
