package tinysdr

// Tests for the extension surface of the public API (§7 features).

import (
	"math"
	"testing"

	"github.com/uwsdr/tinysdr/internal/ota"
)

func TestFacadeAdaptSF(t *testing.T) {
	if got := AdaptSF(-80, 125e3, 3); got != 7 {
		t.Errorf("strong link SF = %d, want 7", got)
	}
	if got := AdaptSF(-140, 125e3, 3); got != 12 {
		t.Errorf("dead link SF = %d, want 12", got)
	}
}

func TestFacadePathLoss(t *testing.T) {
	m := PathLoss{FreqHz: 915e6, Exponent: 2.9}
	if r := m.RangeFor(14, 2, 0, LoRaSensitivityDBm(8, 125e3)); r < 1000 {
		t.Errorf("LoRa range = %.0f m, want km scale", r)
	}
}

func TestFacadeLocalization(t *testing.T) {
	ranger, err := NewRanger([]float64{902e6, 904e6, 918e6}, 128)
	if err != nil {
		t.Fatal(err)
	}
	sys := &LocalizationSystem{
		Anchors: []Anchor{{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 0, Y: 60}},
		Ranger:  ranger,
	}
	x, y, err := sys.Locate(20, 25, func(d float64) float64 { return -65 }, -100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Hypot(x-20, y-25); e > 2 {
		t.Errorf("position error %.2f m", e)
	}
	// Direct trilateration is exposed too.
	if _, _, err := Trilaterate(sys.Anchors, []float64{32, 47.2, 40.3}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBackscatter(t *testing.T) {
	cfg := DefaultBackscatterConfig()
	tag := &BackscatterTag{Config: cfg, Reflection: 0.02}
	bits := []int{0, 1, 1, 0, 1, 0, 0, 1}
	reflected, err := tag.Backscatter(bits)
	if err != nil {
		t.Fatal(err)
	}
	rx := BackscatterExcite(cfg, len(reflected))
	rx.Add(reflected)
	reader, err := NewBackscatterReader(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reader.Demodulate(rx, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d wrong", i)
		}
	}
}

func TestFacadeBroadcastOTA(t *testing.T) {
	img := SynthMCUFirmware(8*1024, 1)
	u, err := BuildUpdate(TargetMCU, img)
	if err != nil {
		t.Fatal(err)
	}
	var targets []BroadcastTarget
	var devs []*Device
	for i := 0; i < 3; i++ {
		d := New(Config{ID: uint16(i + 1)})
		devs = append(devs, d)
		targets = append(targets, BroadcastTarget{Node: d.OTA, RSSIdBm: -85})
	}
	sess := NewBroadcastOTASession(targets, 2)
	rep, err := sess.ProgramFleet(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BroadcastPackets != len(u.Chunks) {
		t.Errorf("broadcast packets = %d", rep.BroadcastPackets)
	}
	for _, d := range devs {
		if err := d.OTA.VerifyImage(img, ota.TargetMCU); err != nil {
			t.Error(err)
		}
	}
}

func TestFacadeFleetCampaign(t *testing.T) {
	res, err := RunFleetCampaign(FleetSpec{
		Seed: 3, Nodes: 25, Mode: FleetBroadcast, ImageKB: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 25 || res.Shards != 2 {
		t.Fatalf("%d nodes in %d shards", len(res.Nodes), res.Shards)
	}
	if res.Failed != 0 {
		t.Errorf("%d nodes failed", res.Failed)
	}
	if srv := NewFleetServer(); srv == nil {
		t.Fatal("no fleet server")
	}
	if tb := NewTestbedN(3, 7); len(tb.Nodes) != 7 {
		t.Error("NewTestbedN size mismatch")
	}
}

func TestFacadeDeviceRecording(t *testing.T) {
	d := New(Config{ID: 1})
	d.AttachSDCard(1 << 20)
	if _, err := d.RecordSamples(1000); err != nil {
		t.Fatal(err)
	}
	if d.SDUsed() != 4000 {
		t.Errorf("SD used = %d", d.SDUsed())
	}
}
