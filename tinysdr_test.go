package tinysdr

import (
	"bytes"
	"testing"

	"github.com/uwsdr/tinysdr/internal/lorawan"
)

// TestPublicAPIQuickstart exercises the doc-comment example end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	tx := New(Config{ID: 1})
	rx := New(Config{ID: 2})
	p := DefaultLoRaParams()
	if err := tx.ConfigureLoRa(p); err != nil {
		t.Fatal(err)
	}
	if err := rx.ConfigureLoRa(p); err != nil {
		t.Fatal(err)
	}
	air, err := tx.TransmitLoRa([]byte("hello"), 14)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChannel(42, LoRaNoiseFloorDBm(p))
	pkt, err := rx.ReceiveLoRa(ch.Apply(air, -120))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkt.Payload, []byte("hello")) {
		t.Fatalf("payload = %q", pkt.Payload)
	}
}

func TestPublicAPISensitivityAnchors(t *testing.T) {
	if got := LoRaSensitivityDBm(8, 125e3); got < -126.5 || got > -125.5 {
		t.Errorf("SF8/BW125 sensitivity = %v, want -126", got)
	}
}

func TestPublicAPIDesigns(t *testing.T) {
	if got := LoRaDesign(8).UtilizationPct(); got != 15 {
		t.Errorf("LoRa TRX utilization = %d%%, want 15 (4%% TX + 11%% RX)", got)
	}
	if got := BLEDesign().UtilizationPct(); got != 3 {
		t.Errorf("BLE utilization = %d%%", got)
	}
	img := SynthBitstream(BLEDesign())
	if len(img) != 579*1024 {
		t.Errorf("bitstream = %d bytes", len(img))
	}
}

func TestPublicAPIOTAUpdate(t *testing.T) {
	d := New(Config{ID: 9})
	img := SynthMCUFirmware(8*1024, 1)
	u, err := BuildUpdate(TargetMCU, img)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewOTASession(d, -70, 3)
	if _, err := sess.Program(u, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.OTA.VerifyImage(img, TargetMCU); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPITestbed(t *testing.T) {
	tb := NewTestbed(5)
	if len(tb.Nodes) != 20 {
		t.Fatalf("testbed nodes = %d", len(tb.Nodes))
	}
}

func TestPublicAPILoRaWAN(t *testing.T) {
	var nwk, app [16]byte
	nwk[0], app[0] = 1, 2
	s := NewABPSession(0x26000001, nwk, app)
	f := &LoRaWANFrame{
		MType: lorawan.MTypeUnconfirmedUp, DevAddr: s.DevAddr,
		FPort: 1, FRMPayload: []byte("up"),
	}
	phy, err := f.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lorawan.DecodeData(s, phy, lorawan.Uplink, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.FRMPayload, []byte("up")) {
		t.Fatal("payload mismatch")
	}
}

func TestPublicAPIConcurrent(t *testing.T) {
	p1 := DefaultLoRaParams()
	p2 := DefaultLoRaParams()
	p2.BW = 250e3
	dec, err := NewConcurrentDecoder(250e3, []LoRaParams{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewConcurrentTransmitter(250e3, p1)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := tx.ModulateSymbols([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	got := dec.DemodAligned(sig)
	if len(got) != 2 {
		t.Fatalf("chains = %d", len(got))
	}
	for i, want := range []int{1, 2, 3} {
		if got[0][i] != want {
			t.Errorf("symbol %d = %d", i, got[0][i])
		}
	}
}
