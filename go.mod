module github.com/uwsdr/tinysdr

go 1.24
