// Package tinysdr is a software reproduction of the tinySDR platform
// (Hessar, Najafi, Iyer, Gollakota — "TinySDR: Low-Power SDR Platform for
// Over-the-Air Programmable IoT Testbeds", NSDI 2020): a standalone,
// battery-operated software-defined radio for IoT endpoints with
// over-the-air FPGA/MCU reprogramming.
//
// The package exposes the platform as a set of composable simulation
// models: a Device (radio + FPGA + MCU + power management on a simulated
// clock), a protocol-agnostic Modem registry with the LoRa, BLE and
// backscatter physical layers implemented the way the tinySDR FPGA
// implements them, composable channel scenarios, the OTA programming
// protocol (unicast and §7 broadcast), a campus testbed at any fleet
// size, and a campaign control plane that programs whole fleets
// (RunFleetCampaign, cmd/tinysdr-fleet). Every figure and table of the
// paper's evaluation can be regenerated from these models with
// cmd/tinysdr-eval.
// The Monte-Carlo sweeps behind those figures run on a zero-allocation
// DSP hot path and a deterministic trial-parallel runner; PERFORMANCE.md
// describes both and how to benchmark them.
//
// Those two properties — allocation-free hot paths and seed-determinism —
// are also enforced statically: cmd/tinysdr-vet runs stock go vet plus
// the repo's own analyzers (noallocinto, determinism, goroutinehygiene,
// seedflow; see VetAnalyzers) and fails on any diagnostic or unreviewed
// waiver, gated by testdata/vet.golden:
//
//	go run ./cmd/tinysdr-vet ./...
//
// # Quick start
//
// Any registered PHY runs through the same Modem/Link pipeline — swap
// "lora" for "ble" or "backscatter" and nothing else changes:
//
//	tx, _ := tinysdr.NewModem("lora")
//	rx, _ := tinysdr.NewModem("lora")
//	sc := tinysdr.NewChannelScenario(
//		tinysdr.NewGainStage(rx.SensitivityDBm()+6), // -120 dBm for LoRa
//		tinysdr.NewNoiseStage(rx.NoiseFloorDBm()),
//	)
//	link, _ := tinysdr.OpenLink(tx, rx, sc, 42)
//	pkt, _ := link.Send([]byte("hello"))
//	fmt.Printf("%s\n", pkt)
//	stats, _ := link.Run([]byte("hello"), 100)
//	fmt.Printf("PER %.1f%% at %.1f dBm\n", stats.PER*100, stats.RSSIdBm)
//
// The per-protocol device helpers (ConfigureLoRa/TransmitLoRa/ReceiveLoRa,
// NewAdvertiser, NewBackscatterReader, ...) remain available as thin
// wrappers over the same PHY implementations; MIGRATION.md maps the old
// constructors to Link calls.
//
// # Crowd-sourced spectrum sensing
//
// The sensing subsystem (internal/sense, cmd/tinysdr-sense) turns a fleet
// of endpoints into a distributed spectrum observatory: each node measures
// the band through the chunked RX seam (SampleStream), reports a quantized
// spectrum over a compact binary wire format, and an aggregator merges the
// streams into a time×frequency occupancy map that is byte-identical at
// any worker count:
//
//	world := tinysdr.DefaultSenseWorld()
//	res, _ := tinysdr.RunSenseSweep(tinysdr.SenseSweepConfig{
//		World: world, FFTSize: 256,
//		Nodes: 10000, Ticks: 6, Seed: 1, ThresholdDBm: -85,
//	})
//	var m tinysdr.OccupancyMap
//	_ = m.UnmarshalBinary(res.MapBytes)
//	fmt.Printf("occupancy %.3f\n", m.Summarize().Occupancy)
package tinysdr

import (
	"context"
	"net/http"

	"github.com/uwsdr/tinysdr/internal/backscatter"
	"github.com/uwsdr/tinysdr/internal/ble"
	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/core"
	"github.com/uwsdr/tinysdr/internal/fault"
	"github.com/uwsdr/tinysdr/internal/fleet"
	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/lint"
	"github.com/uwsdr/tinysdr/internal/localize"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/lora/concurrent"
	"github.com/uwsdr/tinysdr/internal/lorawan"
	"github.com/uwsdr/tinysdr/internal/ota"
	"github.com/uwsdr/tinysdr/internal/phy"
	"github.com/uwsdr/tinysdr/internal/radio"
	"github.com/uwsdr/tinysdr/internal/sense"
	"github.com/uwsdr/tinysdr/internal/sim/scenario"
	"github.com/uwsdr/tinysdr/internal/testbed"
	"github.com/uwsdr/tinysdr/internal/trace"
)

// Modem is one protocol's physical layer behind the protocol-agnostic PHY
// contract: waveform synthesis (ModulateInto), packet recovery
// (DemodulateFrom) and the link-budget anchors (SensitivityDBm,
// NoiseFloorDBm), all derived from a single radio profile. LoRa, BLE and
// backscatter all satisfy it; a Modem is single-goroutine like the
// demodulator scratch it owns.
type Modem = phy.Modem

// RadioProfile is a receive chain's link-budget identity (name + noise
// figure); a Modem's sensitivity and noise floor both derive from its one
// profile, so a link can never mix noise figures.
type RadioProfile = channel.RadioProfile

// Link binds a TX modem, a ChannelScenario and an RX modem into one
// reproducible pipeline with PER/RSSI metrics: every packet's channel
// randomness is a fixed function of (seed, packet index).
type Link = phy.Link

// LinkStats summarizes a Link measurement run.
type LinkStats = phy.Stats

// RegisteredPHYs lists every protocol in the PHY registry, sorted. Each
// name is valid for NewModem, tinysdr-eval's -phy flag and the scenario
// grammar's interferer=<phy> term.
func RegisteredPHYs() []string { return phy.Names() }

// NewModem builds the named protocol's canonical modem from the registry
// ("lora", "ble", "backscatter", or any later registration).
func NewModem(name string) (Modem, error) { return phy.New(name) }

// NewLoRaModem returns a LoRa modem for explicit parameters, calibrated
// against the facade's LoRa radio profile (SX1276-class, the paper's
// -126 dBm SF8/BW125 anchor).
func NewLoRaModem(p LoRaParams) (Modem, error) { return lora.NewModem(p, loRaRadio) }

// NewBLEModem returns a BLE beacon modem at the given oversampling (4
// matches the radio's 4 MHz interface at 1 Mbps), calibrated against the
// CC2650 reference chain of Fig. 12.
func NewBLEModem(sps int) (Modem, error) { return ble.NewModem(sps, radio.CC2650Profile()) }

// NewBackscatterModem returns a §7 backscatter reader modem for the
// configuration, on the platform's own I/Q chain.
func NewBackscatterModem(c BackscatterConfig) (Modem, error) {
	return backscatter.NewModem(c, radio.AT86RF215Profile())
}

// OpenLink binds the pipeline: TX modem → scenario → RX modem. The modems
// must share a sample rate; a nil scenario is the identity channel; seed
// drives all channel randomness.
func OpenLink(tx, rx Modem, sc *ChannelScenario, seed int64) (*Link, error) {
	return phy.Open(tx, rx, sc, seed)
}

// SampleSource is the replay side of the device seam: a sample device
// serving received baseband packets by index (a stored trace, later
// hardware), mirroring the Pluto/SoapySDR-class source abstractions. A
// replay Link pulls packets from it instead of running the modulator and
// channel.
type SampleSource = phy.Source

// SampleSink is the capture side of the device seam: a tap on the
// channel output that observes — and, modelling the receive ADC, may
// quantize in place — every waveform before demodulation (Link.Tap).
type SampleSink = phy.Sink

// OpenReplayLink binds a SampleSource to an RX modem: demodulation, loss
// accounting and power measurement run exactly as on a live Link, but
// every waveform is literal, so runs are deterministic by construction.
func OpenReplayLink(src SampleSource, rx Modem) (*Link, error) {
	return phy.OpenReplay(src, rx)
}

// TraceMeta identifies what an IQ trace captured: protocol, seed,
// scenario recipe, payload and quantization.
type TraceMeta = trace.Meta

// TracePacket locates one captured packet inside a trace: content hash,
// sample count and the per-packet converter full scale.
type TracePacket = trace.Packet

// Trace is one recorded capture: a manifest plus the content-addressed
// code blobs its packets reference.
type Trace = trace.Trace

// TraceStore is the on-disk trace store: binary manifests plus shared
// FNV-addressed, lzo-compressed blobs (see cmd/tinysdr-trace).
type TraceStore = trace.Store

// OpenTraceStore opens (creating if needed) a trace store rooted at dir.
func OpenTraceStore(dir string) (*TraceStore, error) { return trace.OpenStore(dir) }

// RecordTrace captures a live link run — packets indices 0..packets-1
// with a recording ADC tap installed — into a replayable Trace whose
// manifest pins the run's per-packet losses and RSSI.
func RecordTrace(link *Link, meta TraceMeta, packets int) (*Trace, error) {
	return trace.Record(link, meta, packets)
}

// OpenTraceReplay binds a trace to a fresh RX modem of its recorded PHY;
// the returned Link replays the stored waveforms bit-exactly.
func OpenTraceReplay(t *Trace) (*Link, error) { return trace.OpenReplay(t) }

// NewTraceSource returns a SampleSource serving a trace's packets, for
// binding to an RX modem via OpenReplayLink.
func NewTraceSource(t *Trace) (SampleSource, error) { return trace.NewSource(t) }

// ReplayTrace re-demodulates a whole trace across a worker pool and
// returns the measured stats — byte-identical at any worker count.
func ReplayTrace(t *Trace, workers int) (LinkStats, error) { return trace.Replay(t, workers) }

// VerifyTrace replays a trace and diffs per-packet losses, PER and RSSI
// byte-for-byte against the recorded manifest — the cross-version A/B
// gate CI runs on the committed testdata/traces corpus.
func VerifyTrace(t *Trace, workers int) error { return trace.Verify(t, workers) }

// SampleStream is the chunked RX seam: a receiver consuming IQ in
// fixed-size chunks instead of whole-capture buffers, the way streaming
// hardware hands samples over. ReadChunk fills dst and returns io.EOF
// after the final (possibly short) chunk.
type SampleStream = phy.Stream

// StreamSamples wraps an in-memory capture as a SampleStream.
func StreamSamples(name string, sampleRate float64, x Samples) SampleStream {
	return phy.StreamSamples(name, sampleRate, x)
}

// SenseWorld is the shared propagation field of a crowd-sensing sweep:
// emitters, noise floor, capture geometry and node trajectory parameters.
type SenseWorld = sense.World

// SenseEmitter is one transmitter in a SenseWorld.
type SenseEmitter = sense.Emitter

// DefaultSenseWorld returns the 915 MHz campus sensing scenario: three
// emitters at distinct offsets, duties and powers over a 1 MHz band.
func DefaultSenseWorld() SenseWorld { return sense.DefaultWorld() }

// SpectrumSensor is one node's sensing engine: it synthesizes the node's
// view of the world at a (node, tick), streams it through the chunked RX
// seam into a Welch estimator, and quantizes the result into a
// SenseReport. Every measurement is a pure function of (seed, node, tick).
type SpectrumSensor = sense.Sensor

// NewSpectrumSensor builds a sensor for a world at the given FFT size.
func NewSpectrumSensor(w *SenseWorld, fftSize int, seed int64) (*SpectrumSensor, error) {
	return sense.NewSensor(w, fftSize, seed)
}

// SenseReport is one node's spectrum measurement at one tick: quarter-dB
// quantized bin powers with a strict, canonical binary wire format.
type SenseReport = sense.Report

// OccupancyMap is the aggregated time×frequency occupancy grid: exact
// integer per-cell moments, so merge order never changes the bytes.
type OccupancyMap = sense.Map

// NewOccupancyMap returns an empty grid for the geometry and threshold.
func NewOccupancyMap(ticks, bins int, sampleRate, thresholdDBm float64) (*OccupancyMap, error) {
	return sense.NewMap(ticks, bins, sampleRate, thresholdDBm)
}

// SenseAggregator ingests concurrent report streams into an OccupancyMap
// under a bounded in-flight byte budget, rejecting (never blocking) past
// it — see SenseBackpressure.
type SenseAggregator = sense.Aggregator

// NewSenseAggregator returns an aggregator over the map; budgetBytes <= 0
// selects the default admission budget.
func NewSenseAggregator(m *OccupancyMap, budgetBytes int64) (*SenseAggregator, error) {
	return sense.NewAggregator(m, budgetBytes)
}

// NewSenseHandler serves an aggregator's ingest API over HTTP:
// POST /reports, GET /map, GET /map/summary, GET /stats
// (see cmd/tinysdr-sense serve).
func NewSenseHandler(a *SenseAggregator) http.Handler { return sense.NewHandler(a) }

// SenseBackpressure reports whether an ingest error is the aggregator
// shedding load (the HTTP handler's 429); the producer should retry later.
func SenseBackpressure(err error) bool { return sense.IsBackpressure(err) }

// SenseSweepConfig describes one fleet sensing campaign.
type SenseSweepConfig = sense.SweepConfig

// SenseSweepResult is a completed campaign: the marshaled OccupancyMap
// plus report accounting.
type SenseSweepResult = sense.SweepResult

// RunSenseSweep simulates the fleet across a deterministic worker pool;
// the marshaled map is byte-identical for any SenseSweepConfig.Workers.
func RunSenseSweep(cfg SenseSweepConfig) (*SenseSweepResult, error) { return sense.Sweep(cfg) }

// InterfererWaveform builds the canonical interference waveform of any
// registered PHY at a victim link's sample rate — the protocol-generic
// successor of LoRaInterfererWaveform/BLEInterfererWaveform, and exactly
// what the scenario grammar's interferer=<phy> term injects.
func InterfererWaveform(kind string, dstRate float64) (Samples, error) {
	return scenario.DefaultInterfererWaveform(kind, dstRate)
}

// Device is one simulated tinySDR board: AT86RF215 I/Q radio, LFE5U-25F
// FPGA, MSP432 MCU, SX1276 OTA backbone, flash, RF front ends and the
// seven-domain PMU, sharing a simulated clock and an energy ledger.
type Device = core.Device

// Config selects a device's identity.
type Config = core.Config

// New powers up a device (MCU running, radios asleep, FPGA unconfigured).
func New(cfg Config) *Device { return core.New(cfg) }

// Samples is a complex baseband buffer; |x|² is instantaneous power in mW.
type Samples = iq.Samples

// LoRaParams configures the LoRa PHY (spreading factor, bandwidth, coding
// rate, preamble, header/CRC options).
type LoRaParams = lora.Params

// LoRaPacket is a received LoRa frame.
type LoRaPacket = lora.Packet

// CodingRate is a LoRa coding rate 4/(4+CR).
type CodingRate = lora.CodingRate

// LoRa coding rates.
const (
	CR45 = lora.CR45
	CR46 = lora.CR46
	CR47 = lora.CR47
	CR48 = lora.CR48
)

// DefaultLoRaParams returns the paper's case-study configuration:
// SF8, 125 kHz, CR 4/5, explicit header, CRC, 10-symbol preamble.
func DefaultLoRaParams() LoRaParams { return lora.DefaultParams() }

// loRaRadio is the single receive-chain profile behind every facade LoRa
// link-budget helper and NewLoRaModem. Routing LoRaSensitivityDBm and
// LoRaNoiseFloorDBm through the same profile fixes the historical
// mismatch where sensitivity used the SX1276's 7 dB noise figure while
// the noise floor used the AT86RF215's 8.8 dB for the same link.
var loRaRadio = radio.SX1276Profile()

// LoRaSensitivityDBm returns the receive sensitivity the platform achieves
// for a spreading factor and bandwidth (−126 dBm at SF8/125 kHz, matching
// both the paper's measurement and the SX1276 datasheet). It derives from
// the same radio profile as LoRaNoiseFloorDBm.
func LoRaSensitivityDBm(sf int, bwHz float64) float64 {
	return lora.SensitivityDBm(sf, bwHz, loRaRadio.NoiseFigureDB)
}

// LoRaNoiseFloorDBm returns the receiver noise floor for a configuration's
// sampled bandwidth — the floor to hand to NewChannel for link
// simulations. It derives from the same radio profile as
// LoRaSensitivityDBm, so a simulated link's floor and sensitivity anchor
// can never mix noise figures.
func LoRaNoiseFloorDBm(p LoRaParams) float64 {
	return loRaRadio.NoiseFloorDBm(p.SampleRate())
}

// Channel is an AWGN channel with a fixed receiver noise floor.
type Channel = channel.AWGN

// NewChannel returns a deterministic AWGN channel (floor in dBm over the
// sampled bandwidth).
func NewChannel(seed int64, floorDBm float64) *Channel {
	return channel.NewAWGN(seed, floorDBm)
}

// PathLoss is the log-distance propagation model used for deployments.
type PathLoss = channel.LogDistance

// ChannelStage is one impairment in a composed channel scenario (fading,
// CFO and clock drift, co-channel interference, mobility, noise).
type ChannelStage = channel.Stage

// ChannelScenario chains stages into one reproducible link condition:
// Reset(seed, trial) re-derives every random element, so sweeps are
// bit-identical at any worker count (see PERFORMANCE.md).
type ChannelScenario = channel.Scenario

// NewChannelScenario composes stages in signal-path order — typically
// gain (or mobility), fading, CFO, interference, then noise.
func NewChannelScenario(stages ...ChannelStage) *ChannelScenario {
	return channel.NewScenario(stages...)
}

// NewGainStage scales the signal to a fixed mean received power.
func NewGainStage(rssiDBm float64) ChannelStage { return channel.NewGain(rssiDBm) }

// NewFlatFadingStage returns single-tap block fading with linear Rician
// factor k (0 = Rayleigh) — the right model for narrowband IoT links.
func NewFlatFadingStage(kFactor float64) ChannelStage { return channel.NewFlatFading(kFactor) }

// NewCFOStage models oscillator mismatch: a fixed carrier offset, a
// per-trial Gaussian draw of width jitterHz, and a sample-clock error in
// parts per million.
func NewCFOStage(offsetHz, jitterHz, driftPPM, sampleRate float64) ChannelStage {
	return channel.NewCFO(offsetHz, jitterHz, driftPPM, sampleRate)
}

// InterfererStage injects a co-channel transmission from a second live
// modulator; its exported fields tune carrier offset and alignment. To
// shift the interferer off the victim carrier, set both FreqOffsetHz and
// SampleRate — an offset without a rate panics at Reset rather than being
// silently ignored.
type InterfererStage = channel.Interferer

// NewInterfererStage returns an interference stage for a waveform at the
// given received power, with the start offset redrawn per trial.
func NewInterfererStage(kind string, waveform Samples, powerDBm float64, maxOffsetSamples int) *InterfererStage {
	return channel.NewInterferer(kind, waveform, powerDBm, maxOffsetSamples)
}

// NewNoiseStage adds receiver noise at a fixed integrated floor.
func NewNoiseStage(floorDBm float64) ChannelStage { return channel.NewNoise(floorDBm) }

// NewDropoutStage models an RX desync / frame-loss burst: with the given
// per-trial probability a contiguous window of the record is attenuated by
// depthDB (0 selects the 40 dB default) while the noise floor persists —
// the waveform-level counterpart of the fault engine's desync faults
// (scenario grammar term dropout=P[:DEPTHDB]).
func NewDropoutStage(prob, depthDB float64) ChannelStage { return channel.NewDropout(prob, depthDB) }

// ScenarioSpec is a parsed composed-channel description (the grammar of
// tinysdr-eval's -scenario flag); Build turns it into a ChannelScenario
// for a concrete link.
type ScenarioSpec = scenario.Spec

// ScenarioLink describes the victim link a ScenarioSpec is built for.
type ScenarioLink = scenario.Link

// ParseScenario parses the -scenario grammar, e.g.
// "fading=rician:10,cfo=200,drift=20,interferer=lora:-110".
func ParseScenario(s string) (*ScenarioSpec, error) { return scenario.Parse(s) }

// LoRaInterfererWaveform runs a live LoRa modulator and resamples its
// packet to a victim link's rate, for use with NewInterfererStage.
func LoRaInterfererWaveform(p LoRaParams, payload []byte, dstRate float64) (Samples, error) {
	return scenario.LoRaInterfererWaveform(p, payload, dstRate)
}

// BLEInterfererWaveform runs a live GFSK modulator on an advertising
// channel and resamples the beacon to a victim link's rate.
func BLEInterfererWaveform(b Beacon, sps, advChannel int, dstRate float64) (Samples, error) {
	return scenario.BLEInterfererWaveform(b, sps, advChannel, dstRate)
}

// Beacon is a BLE non-connectable advertisement.
type Beacon = ble.Beacon

// Advertiser transmits a beacon across the three advertising channels.
type Advertiser = ble.Advertiser

// NewAdvertiser returns an advertiser for a beacon at the given samples
// per symbol (4 matches the radio's 4 MHz interface at 1 Mbps).
func NewAdvertiser(b Beacon, sps int) (*Advertiser, error) {
	return ble.NewAdvertiser(b, sps)
}

// BLEDemodulator is the discriminator receiver used to verify beacons.
type BLEDemodulator = ble.Demodulator

// NewBLEDemodulator returns a beacon receiver.
func NewBLEDemodulator(sps int) (*BLEDemodulator, error) { return ble.NewDemodulator(sps) }

// Design is a synthesized FPGA configuration with its resource footprint.
type Design = fpga.Design

// LoRaDesign returns the LoRa transceiver FPGA design for a spreading
// factor (modulator + demodulator, ~15% of the part).
func LoRaDesign(sf int) *Design { return fpga.LoRaTRXDesign(sf) }

// BLEDesign returns the BLE beacon generator design (3% of the part).
func BLEDesign() *Design { return fpga.BLEBeaconDesign() }

// SynthBitstream generates the 579 kB configuration image for a design.
func SynthBitstream(d *Design) []byte { return fpga.SynthBitstream(d) }

// SynthMCUFirmware generates a synthetic MCU firmware image.
func SynthMCUFirmware(size int, seed int64) []byte { return fpga.SynthMCUFirmware(size, seed) }

// Update is a firmware image prepared for over-the-air distribution.
type Update = ota.Update

// UpdateTarget selects what an update reprograms.
type UpdateTarget = ota.Target

// Update targets.
const (
	TargetFPGA = ota.TargetFPGA
	TargetMCU  = ota.TargetMCU
)

// BuildUpdate compresses and packetizes a firmware image (30 kB miniLZO
// blocks, 60-byte LoRa packets).
func BuildUpdate(target UpdateTarget, image []byte) (*Update, error) {
	return ota.BuildUpdate(target, image)
}

// OTASession drives one node's firmware update over the LoRa backbone.
type OTASession = ota.Session

// NewOTASession returns a session for a device at the given link RSSI.
func NewOTASession(d *Device, rssiDBm float64, seed int64) *OTASession {
	return ota.NewSession(d.OTA, rssiDBm, seed)
}

// Testbed is the 20-node campus deployment of the paper's evaluation.
type Testbed = testbed.Campus

// TestbedResult is one node's outcome in a fleet update.
type TestbedResult = testbed.ProgramResult

// NewTestbed returns the deterministic campus deployment for a seed.
func NewTestbed(seed int64) *Testbed { return testbed.NewCampus(seed) }

// NewTestbedN returns a deterministic n-node deployment — the campus
// geometry densified to an arbitrary fleet size.
func NewTestbedN(seed int64, n int) *Testbed { return testbed.NewCampusN(seed, n) }

// TestbedCDF summarizes fleet programming durations as an empirical CDF.
func TestbedCDF(results []TestbedResult) []testbed.CDFPoint { return testbed.CDF(results) }

// ConcurrentDecoder demodulates multiple concurrent LoRa configurations
// with different chirp slopes from one sample stream (§6 of the paper).
type ConcurrentDecoder = concurrent.Decoder

// NewConcurrentDecoder builds a decoder for configurations sharing a
// common sample rate.
func NewConcurrentDecoder(sampleRate float64, configs []LoRaParams) (*ConcurrentDecoder, error) {
	return concurrent.NewDecoder(sampleRate, configs)
}

// ConcurrentTransmitter produces symbol streams at the decoder's rate.
type ConcurrentTransmitter = concurrent.Transmitter

// NewConcurrentTransmitter returns a transmitter for one configuration.
func NewConcurrentTransmitter(sampleRate float64, p LoRaParams) (*ConcurrentTransmitter, error) {
	return concurrent.NewTransmitter(sampleRate, p)
}

// LoRaWANSession is a TTN-compatible MAC security context (ABP or OTAA).
type LoRaWANSession = lorawan.Session

// NewABPSession returns a personalized (ABP) LoRaWAN session.
func NewABPSession(addr uint32, nwkSKey, appSKey [16]byte) *LoRaWANSession {
	return lorawan.NewABPSession(lorawan.DevAddr(addr), nwkSKey, appSKey)
}

// LoRaWANFrame is a LoRaWAN data message.
type LoRaWANFrame = lorawan.DataFrame

// AdaptSF selects the fastest spreading factor with the requested link
// margin at an observed RSSI — the §7 rate-adaptation primitive. It uses
// the same radio profile as LoRaSensitivityDBm.
func AdaptSF(rssiDBm, bwHz, marginDB float64) int {
	return lora.AdaptSF(rssiDBm, bwHz, loRaRadio.NoiseFigureDB, marginDB)
}

// Ranger measures range by multi-carrier phase (§7 localization).
type Ranger = localize.Ranger

// NewRanger returns a ranger over the given carrier frequencies.
func NewRanger(freqs []float64, samplesPerTone int) (*Ranger, error) {
	return localize.NewRanger(freqs, samplesPerTone)
}

// Anchor is a reference node at a known position.
type Anchor = localize.Anchor

// LocalizationSystem is a distributed set of ranging anchors.
type LocalizationSystem = localize.System

// Trilaterate solves 2D position from anchor ranges.
func Trilaterate(anchors []Anchor, ranges []float64) (x, y float64, err error) {
	return localize.Trilaterate(anchors, ranges)
}

// BackscatterConfig describes a backscatter link (§7 low-power readers).
type BackscatterConfig = backscatter.Config

// BackscatterTag models a reflecting endpoint.
type BackscatterTag = backscatter.Tag

// BackscatterReader decodes tag bits from the platform's I/Q stream.
type BackscatterReader = backscatter.Reader

// NewBackscatterReader returns a reader for the configuration.
func NewBackscatterReader(c BackscatterConfig) (*BackscatterReader, error) {
	return backscatter.NewReader(c)
}

// DefaultBackscatterConfig is a 100 kHz subcarrier, 10 kbps link at the
// platform's 4 MHz interface.
func DefaultBackscatterConfig() BackscatterConfig { return backscatter.DefaultConfig() }

// BackscatterExcite produces the exciter tone (the Fig. 8 single-tone
// generator).
func BackscatterExcite(c BackscatterConfig, samples int) Samples {
	return backscatter.Excite(c, samples)
}

// BroadcastOTASession programs a whole fleet with the §7 broadcast MAC.
type BroadcastOTASession = ota.BroadcastSession

// BroadcastTarget pairs a device with its downlink quality.
type BroadcastTarget = ota.BroadcastTarget

// NewBroadcastOTASession returns a broadcast session over the fleet.
func NewBroadcastOTASession(targets []BroadcastTarget, seed int64) *BroadcastOTASession {
	return ota.NewBroadcastSession(targets, seed)
}

// FleetSpec describes one fleet programming campaign: size, protocol
// (unicast or broadcast), firmware image, cell partition and seed.
type FleetSpec = fleet.Spec

// FleetResult is a completed campaign with per-node outcomes.
type FleetResult = fleet.Result

// FleetNodeResult is one node's campaign outcome.
type FleetNodeResult = fleet.NodeResult

// Campaign protocols.
const (
	FleetUnicast   = fleet.ModeUnicast
	FleetBroadcast = fleet.ModeBroadcast
)

// RunFleetCampaign programs an arbitrary-size fleet, sharding it into AP
// cells across a deterministic worker pool. Per-node results are
// bit-identical for any FleetSpec.Workers value.
func RunFleetCampaign(spec FleetSpec) (*FleetResult, error) { return fleet.Run(spec) }

// RunFleetCampaignContext is RunFleetCampaign with cancellation: a canceled
// context aborts the campaign between shards and between self-healing
// repair rounds.
func RunFleetCampaignContext(ctx context.Context, spec FleetSpec) (*FleetResult, error) {
	return fleet.RunContext(ctx, spec)
}

// FleetServer schedules campaigns and serves their state over a JSON HTTP
// API (see cmd/tinysdr-fleet).
type FleetServer = fleet.Server

// NewFleetServer returns an empty in-memory campaign scheduler; campaigns
// die with the process. Use OpenFleetServer for the crash-recoverable
// variant.
func NewFleetServer() *FleetServer { return fleet.NewServer() }

// OpenFleetServer returns a crash-recoverable campaign scheduler rooted at
// stateDir: every campaign state transition is write-ahead journaled, and
// reopening the same directory after a crash recovers every campaign —
// interrupted ones resume from their last completed shard to a Result
// byte-identical to an uninterrupted run (see RELIABILITY.md).
func OpenFleetServer(stateDir string) (*FleetServer, error) { return fleet.OpenServer(stateDir) }

// FleetClient is the retrying HTTP client of the campaign API: idempotent
// create via client-supplied campaign IDs, per-request timeouts, and capped
// exponential backoff with seeded jitter, so a driven campaign survives a
// control-plane restart.
type FleetClient = fleet.Client

// NewFleetClient returns a campaign API client for the server at base
// (e.g. "http://127.0.0.1:8080"). seed drives only the retry jitter.
func NewFleetClient(base string, seed int64) *FleetClient { return fleet.NewClient(base, seed) }

// FaultSpec describes deterministic fault intensities for chaos campaigns:
// node crash/reboot, flash write failures and bit-rot, RX desync bursts,
// duty-cycle dropouts and AP outage windows. The zero value injects
// nothing.
type FaultSpec = fault.Spec

// FaultPlan binds a FaultSpec to a seed: every fault is a pure function of
// (seed, node, event index), so chaos campaigns are byte-identical at any
// worker count.
type FaultPlan = fault.Plan

// ParseFaultSpec parses the compact fault grammar of tinysdr-eval's -faults
// and FleetSpec.Faults, e.g. "crash=0.001,flashfail=0.01,desync=0.05:4".
func ParseFaultSpec(s string) (FaultSpec, error) { return fault.Parse(s) }

// NewFaultPlan binds a spec to a seed.
func NewFaultPlan(spec FaultSpec, seed int64) *FaultPlan { return fault.NewPlan(spec, seed) }

// OTAHealConfig tunes the self-healing broadcast campaign protocol:
// fault plan, per-node retry budgets, repair-round and backoff caps, and a
// cancellation hook. The zero value is runnable.
type OTAHealConfig = ota.HealConfig

// OTAFailureClass is the per-node failure taxonomy of a broadcast
// campaign: unreachable, exhausted-retries, crashed, flash-fault or
// protocol (empty on success).
type OTAFailureClass = ota.FailureClass

// Failure classes.
const (
	OTAFailNone        = ota.FailNone
	OTAFailUnreachable = ota.FailUnreachable
	OTAFailExhausted   = ota.FailExhausted
	OTAFailCrashed     = ota.FailCrashed
	OTAFailFlash       = ota.FailFlash
	OTAFailProtocol    = ota.FailProtocol
)

// LintAnalyzer is one static check over the repo's invariants, runnable
// by cmd/tinysdr-vet or embedded in another driver.
type LintAnalyzer = lint.Analyzer

// VetAnalyzers returns the repo's invariant analyzers — noallocinto
// (zero-alloc *Into/*From hot paths), determinism (no ambient
// randomness, wall clocks or map-order dependence on metrics paths),
// goroutinehygiene (goroutines confined to internal/par, internal/fleet
// and cmd/; no sends or handler calls under a mutex) and seedflow
// (seed-taking functions must be pure functions of their seed) — in the
// order cmd/tinysdr-vet runs them. Each analyzer's Waiver field names
// the //lint:<token> that suppresses it; a waiver requires a written
// reason and is counted against testdata/vet.golden.
func VetAnalyzers() []*LintAnalyzer { return lint.Suite() }
