// Command tinysdr-node runs one simulated tinySDR endpoint through a
// duty-cycled sensing lifecycle — sleep, wake, transmit a LoRa reading,
// sleep — and prints the timing and the energy ledger, illustrating the
// §5.1 power story.
//
// Usage:
//
//	tinysdr-node -cycles 5 -period 10s -txpower 14
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/uwsdr/tinysdr/internal/core"
	"github.com/uwsdr/tinysdr/internal/eval"
	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/power"
)

func main() {
	cycles := flag.Int("cycles", 5, "number of duty cycles to run")
	period := flag.Duration("period", 10*time.Second, "duty-cycle period")
	txPower := flag.Float64("txpower", 14, "LoRa transmit power in dBm")
	flag.Parse()

	d := core.New(core.Config{ID: 1})
	p := lora.DefaultParams()
	d.Sleep()
	fmt.Printf("sleep power: %.1f µW\n", d.SystemPowerW()*1e6)
	d.PMU.Ledger().Reset()

	reading := []byte{0x17, 0x2A, 0x01}
	for i := 0; i < *cycles; i++ {
		cycleStart := d.Clock.Now()
		wake, err := d.Wake(fpga.LoRaTRXDesign(p.SF))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := d.ConfigureLoRa(p); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if _, err := d.TransmitLoRa(reading, *txPower); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		active := d.Clock.Now() - cycleStart
		d.Sleep()
		d.Clock.AdvanceTo(cycleStart + *period)
		fmt.Printf("cycle %d: wake %v, active %v, slept %v\n",
			i+1, wake, active, *period-active)
	}

	total := d.PMU.Ledger().Energy()
	elapsed := d.Clock.Now()
	avg := total / elapsed.Seconds()
	fmt.Printf("\ntotal: %.2f mJ over %v — average %.0f µW\n", total*1e3, elapsed, avg*1e6)
	batt := power.DefaultBattery()
	fmt.Printf("1000 mAh battery life at this duty cycle: %.1f years\n",
		power.Years(batt.Lifetime(avg)))

	fmt.Println("\nenergy by component:")
	rows := [][]string{}
	for _, e := range d.PMU.Ledger().Report() {
		rows = append(rows, []string{e.Component,
			fmt.Sprintf("%.3f mJ", e.EnergyJ*1e3),
			fmt.Sprintf("%.1f%%", e.EnergyJ/total*100)})
	}
	fmt.Print(eval.RenderTable([]string{"Component", "Energy", "Share"}, rows))
}
