// Command tinysdr-eval regenerates the tables and figures of the TinySDR
// paper's evaluation (§5, §6) from the simulation models.
//
// Usage:
//
//	tinysdr-eval -list
//	tinysdr-eval -run all
//	tinysdr-eval -run fig10,fig14 -quick -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/uwsdr/tinysdr/internal/eval"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	run := flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
	quick := flag.Bool("quick", false, "reduce Monte-Carlo trial counts")
	seed := flag.Int64("seed", 1, "PRNG seed for all experiments")
	flag.Parse()

	if *list {
		for _, e := range eval.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []eval.Experiment
	if *run == "all" {
		selected = eval.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := eval.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := eval.Config{Quick: *quick, Seed: *seed}
	for _, e := range selected {
		fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		r, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(r.Text)
	}
}
