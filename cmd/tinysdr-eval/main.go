// Command tinysdr-eval regenerates the tables and figures of the TinySDR
// paper's evaluation (§5, §6) from the simulation models.
//
// Usage:
//
//	tinysdr-eval -list
//	tinysdr-eval -run all
//	tinysdr-eval -run fig10,fig14 -quick -seed 7
//	tinysdr-eval -run fig10,fig11 -bench-json   # machine-readable metrics
//	tinysdr-eval -run coexistence,mobility      # composed-channel sweeps
//	tinysdr-eval -run scenario -scenario "fading=rician:10,cfo=200,interferer=ble:-110"
//	tinysdr-eval -run scenario -phy backscatter # any registered PHY as the victim
//	tinysdr-eval -run all -adaptive=false       # full fixed trial budgets
//	tinysdr-eval -run scenario -eps 0.05        # tighter sequential-stopping bound
//	tinysdr-eval -run chaos -faults "crash=0.001,flashfail=0.02"  # chaos sweep
//
// Monte-Carlo sweeps fan out across all CPUs by default; -workers bounds
// the pool, and sequential stopping (-adaptive, on by default) ends a
// sweep point once its Wilson error-rate interval is settled. Results are
// bit-identical for any worker count in both modes (see PERFORMANCE.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/uwsdr/tinysdr/internal/eval"
	"github.com/uwsdr/tinysdr/internal/phy"
)

// benchEntry is one experiment's machine-readable record.
type benchEntry struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Millis  float64            `json:"wall_ms"`
	Metrics map[string]float64 `json:"metrics"`
}

// finiteMetrics drops non-finite values (some experiments use ±Inf as a
// "link failed" sentinel) so the record always encodes: encoding/json
// rejects Inf and NaN outright, which used to abort -bench-json on any
// selection including such an experiment.
func finiteMetrics(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		if !math.IsInf(v, 0) && !math.IsNaN(v) {
			out[k] = v
		}
	}
	return out
}

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	run := flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
	quick := flag.Bool("quick", false, "reduce Monte-Carlo trial counts")
	seed := flag.Int64("seed", 1, "PRNG seed for all experiments")
	workers := flag.Int("workers", 0, "Monte-Carlo worker pool size (0 = all CPUs)")
	scenarioSpec := flag.String("scenario", "",
		"composed channel scenario for the 'scenario' experiment, e.g. "+
			"\"fading=rician:10,cfo=200,drift=20,interferer=lora:-110\" "+
			"(terms: fading=rayleigh[:taps]|rician:KdB[:taps], cfo/cfojitter=Hz, "+
			"drift=ppm, interferer=PHY:dBm[:freqHz] for any registered PHY, speed=m/s)")
	faults := flag.String("faults", "",
		"base fault spec for the 'chaos' experiment, e.g. "+
			"\"crash=0.001,flashfail=0.01,desync=0.05:4\" "+
			"(terms: crash/flashfail/bitrot/duty=P, desync/apoutage=P[:frames]; "+
			"empty selects the default mix; the sweep scales it across intensities)")
	phyName := flag.String("phy", "",
		"victim protocol for the protocol-generic experiments; any of: "+
			strings.Join(phy.Names(), ", ")+" (default lora)")
	benchJSON := flag.Bool("bench-json", false,
		"emit per-experiment wall time and headline metrics as JSON instead of rendered text")
	adaptive := flag.Bool("adaptive", true,
		"sequential-stopping Monte-Carlo: stop a sweep point once its Wilson PER bound "+
			"is tighter than -eps (bit-identical at any -workers; disable for full fixed budgets)")
	eps := flag.Float64("eps", eval.DefaultEps,
		"Wilson-interval half-width at which an -adaptive sweep point stops early "+
			"(governs the scenario/coexistence/mobility PER sweeps; the fig10/fig11/fig12 "+
			"sensitivity sweeps instead stop when the interval excludes their 10%/1e-3 threshold)")
	flag.Parse()

	if *list {
		for _, e := range eval.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		fmt.Printf("\nregistered PHYs (-phy / interferer=): %s\n", strings.Join(phy.Names(), ", "))
		return
	}
	if *phyName != "" && !phy.Registered(*phyName) {
		fmt.Fprintf(os.Stderr, "unknown -phy %q (registered: %s)\n", *phyName, strings.Join(phy.Names(), ", "))
		os.Exit(2)
	}

	var selected []eval.Experiment
	if *run == "all" {
		selected = eval.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := eval.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *phyName != "" {
		// Only the PHY-generic experiments consume -phy; flag a selection
		// that would silently ignore it (coexistence sweeps every PHY as
		// the interferer, mobility is the LoRa Doppler story by design).
		phyAware := false
		for _, e := range selected {
			if e.ID == "scenario" {
				phyAware = true
			}
		}
		if !phyAware {
			fmt.Fprintf(os.Stderr, "warning: -phy %s has no effect on the selected experiments (it selects the victim of -run scenario)\n", *phyName)
		}
	}

	cfg := eval.Config{
		Quick: *quick, Seed: *seed, Workers: *workers, Scenario: *scenarioSpec, PHY: *phyName,
		Adaptive: eval.Adaptive{Enabled: *adaptive, Eps: *eps},
		Faults:   *faults,
	}
	var bench []benchEntry
	for _, e := range selected {
		if !*benchJSON {
			fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		}
		start := time.Now()
		r, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *benchJSON {
			bench = append(bench, benchEntry{
				ID:      e.ID,
				Title:   e.Title,
				Millis:  float64(time.Since(start).Microseconds()) / 1e3,
				Metrics: finiteMetrics(r.Metrics),
			})
			continue
		}
		fmt.Println(r.Text)
	}

	if *benchJSON {
		sort.Slice(bench, func(i, j int) bool { return bench[i].ID < bench[j].ID })
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"seed":        *seed,
			"quick":       *quick,
			"workers":     *workers,
			"adaptive":    *adaptive,
			"eps":         *eps,
			"experiments": bench,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
