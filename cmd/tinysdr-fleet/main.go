// Command tinysdr-fleet is the fleet campaign control plane: it programs
// arbitrary-size tinySDR fleets over the air, either as a one-shot CLI run
// or as an HTTP service that schedules campaigns and serves their per-node
// results as JSON.
//
// One-shot mode runs a single campaign and exits non-zero if any node
// failed (the CI fleet smoke test relies on this):
//
//	tinysdr-fleet -nodes 100 -mode broadcast -image mcu -seed 1
//	tinysdr-fleet -nodes 1000 -mode unicast -workers 8 -json
//
// Server mode exposes the campaign API:
//
//	tinysdr-fleet -serve :8080
//	curl -X POST localhost:8080/campaigns -d '{"nodes":100,"mode":"broadcast","seed":1}'
//	curl localhost:8080/campaigns/c1        # status + summary
//	curl localhost:8080/campaigns/c1/nodes  # per-node results
//
// Campaigns are deterministic: the same spec (seed, nodes, mode, image,
// shard size) yields bit-identical per-node results at any -workers value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"

	"github.com/uwsdr/tinysdr/internal/eval"
	"github.com/uwsdr/tinysdr/internal/fleet"
)

func main() {
	serve := flag.String("serve", "", "serve the campaign HTTP API on this address instead of running one-shot")
	nodes := flag.Int("nodes", 100, "fleet size")
	mode := flag.String("mode", "broadcast", "programming protocol: broadcast or unicast")
	image := flag.String("image", "mcu", "firmware image: lora, ble, or mcu")
	imageKB := flag.Int("image-kb", 0, "MCU image size in kB (0 = the paper's 78 kB)")
	shard := flag.Int("shard", 0, "nodes per AP cell (0 = the paper's 20-node campus)")
	seed := flag.Int64("seed", 1, "campaign seed (geometry, channels, losses)")
	workers := flag.Int("workers", 0, "host worker pool (0 = all CPUs); results identical for any value")
	jsonOut := flag.Bool("json", false, "emit the full campaign result as JSON")
	faults := flag.String("faults", "",
		"deterministic fault injection spec (terms: crash/flashfail/bitrot/duty=P, "+
			"desync/apoutage=P[:frames]); non-empty selects the self-healing broadcast protocol")
	quorum := flag.Float64("quorum", 0,
		"completion fraction at which the campaign counts as met (0 = all-or-nothing)")
	retryBudget := flag.Int("retry-budget", 0,
		"per-node repair transmission cap in the self-healing protocol (0 = protocol default; "+
			"setting it selects the self-healing protocol like -faults)")
	flag.Parse()

	if *serve != "" {
		srv := fleet.NewServer()
		fmt.Fprintf(os.Stderr, "tinysdr-fleet: serving campaign API on %s\n", *serve)
		if err := http.ListenAndServe(*serve, srv.Handler()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	spec := fleet.Spec{
		Seed:        *seed,
		Nodes:       *nodes,
		ShardSize:   *shard,
		Mode:        fleet.Mode(*mode),
		Image:       *image,
		ImageKB:     *imageKB,
		Workers:     *workers,
		Faults:      *faults,
		Quorum:      *quorum,
		RetryBudget: *retryBudget,
	}
	res, err := fleet.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		printSummary(res)
	}
	// With a quorum the campaign is met at the configured completion
	// fraction; without one QuorumMet reduces to "every node programmed",
	// preserving the historical exit behavior the CI smoke test relies on.
	if !res.QuorumMet {
		fmt.Fprintf(os.Stderr, "tinysdr-fleet: %d/%d nodes failed (completion %.2f, quorum not met)\n",
			res.Failed, len(res.Nodes), res.CompletionFrac)
		os.Exit(1)
	}
}

func printSummary(res *fleet.Result) {
	rows := [][]string{
		{"mode", string(res.Spec.Mode)},
		{"image", res.Spec.Image},
		{"nodes", fmt.Sprintf("%d in %d cells of %d", len(res.Nodes), res.Shards, res.Spec.ShardSize)},
		{"fleet time", fmt.Sprintf("%.1f s", res.FleetTime.Seconds())},
		{"air bytes", fmt.Sprintf("%d", res.AirBytes)},
		{"data packets", fmt.Sprintf("%d", res.DataPackets)},
		{"completed", fmt.Sprintf("%d (%.2f of fleet)", res.Completed, res.CompletionFrac)},
		{"failed", fmt.Sprintf("%d", res.Failed)},
	}
	if res.Spec.Faults != "" {
		rows = append(rows, []string{"faults", res.Spec.Faults})
	}
	if res.Spec.Quorum > 0 {
		met := "not met"
		if res.QuorumMet {
			met = "met"
		}
		rows = append(rows, []string{"quorum", fmt.Sprintf("%.2f (%s)", res.Spec.Quorum, met)})
	}
	// Failure taxonomy breakdown, stable order for scripting.
	var classes []string
	for c := range res.Failures {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		rows = append(rows, []string{"failed: " + c, fmt.Sprintf("%d", res.Failures[c])})
	}
	fmt.Print(eval.RenderTable([]string{"Campaign", ""}, rows))
	for _, n := range res.Nodes {
		if n.Err != "" {
			class := n.Class
			if class == "" {
				class = "failed"
			}
			fmt.Printf("node %d (shard %d, %.0f m, %.1f dBm) [%s]: %s\n",
				n.ID, n.Shard, n.DistanceM, n.RSSIdBm, class, n.Err)
		}
	}
}
