// Command tinysdr-fleet is the fleet campaign control plane: it programs
// arbitrary-size tinySDR fleets over the air, either as a one-shot CLI run
// or as an HTTP service that schedules campaigns and serves their per-node
// results as JSON.
//
// One-shot mode runs a single campaign and exits non-zero if any node
// failed (the CI fleet smoke test relies on this):
//
//	tinysdr-fleet -nodes 100 -mode broadcast -image mcu -seed 1
//	tinysdr-fleet -nodes 1000 -mode unicast -workers 8 -json
//
// Server mode exposes the campaign API; with -state-dir it is
// crash-recoverable (campaign state write-ahead journaled, interrupted
// campaigns resumed from their last completed shard on restart) and a
// SIGTERM drains gracefully — stop admitting, cut running campaigns at the
// next shard boundary, compact the journal:
//
//	tinysdr-fleet -serve :8080 -state-dir /var/lib/tinysdr-fleet
//	curl -X POST localhost:8080/campaigns -d '{"nodes":100,"mode":"broadcast","seed":1}'
//	curl localhost:8080/campaigns/c1        # status + summary
//	curl localhost:8080/campaigns/c1/nodes  # per-node results
//
// Remote mode drives the same one-shot campaign against a served control
// plane through the retrying fleet.Client — create is idempotent via the
// client-supplied -campaign-id, so the run survives a control-plane
// kill/restart mid-campaign and its output is byte-identical to the local
// one-shot run (the CI fleet-crash smoke diffs exactly that):
//
//	tinysdr-fleet -remote http://localhost:8080 -campaign-id soak -nodes 200 -seed 42 -json
//
// Campaigns are deterministic: the same spec (seed, nodes, mode, image,
// shard size) yields bit-identical per-node results at any -workers value.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"github.com/uwsdr/tinysdr/internal/eval"
	"github.com/uwsdr/tinysdr/internal/fleet"
)

func main() {
	serve := flag.String("serve", "", "serve the campaign HTTP API on this address instead of running one-shot")
	stateDir := flag.String("state-dir", "", "journal campaign state under this directory (server mode): campaigns survive a crash and resume from the last completed shard")
	remote := flag.String("remote", "", "run the one-shot campaign against the control plane at this base URL via the retrying client instead of in-process")
	campaignID := flag.String("campaign-id", "", "client-supplied campaign id for -remote (the idempotency key; default cli-<seed>)")
	nodes := flag.Int("nodes", 100, "fleet size")
	mode := flag.String("mode", "broadcast", "programming protocol: broadcast or unicast")
	image := flag.String("image", "mcu", "firmware image: lora, ble, or mcu")
	imageKB := flag.Int("image-kb", 0, "MCU image size in kB (0 = the paper's 78 kB)")
	shard := flag.Int("shard", 0, "nodes per AP cell (0 = the paper's 20-node campus)")
	seed := flag.Int64("seed", 1, "campaign seed (geometry, channels, losses)")
	workers := flag.Int("workers", 0, "host worker pool (0 = all CPUs); results identical for any value")
	jsonOut := flag.Bool("json", false, "emit the full campaign result as JSON")
	faults := flag.String("faults", "",
		"deterministic fault injection spec (terms: crash/flashfail/bitrot/duty=P, "+
			"desync/apoutage=P[:frames]); non-empty selects the self-healing broadcast protocol")
	quorum := flag.Float64("quorum", 0,
		"completion fraction at which the campaign counts as met (0 = all-or-nothing)")
	retryBudget := flag.Int("retry-budget", 0,
		"per-node repair transmission cap in the self-healing protocol (0 = protocol default; "+
			"setting it selects the self-healing protocol like -faults)")
	flag.Parse()

	if *serve != "" {
		var srv *fleet.Server
		var err error
		if *stateDir != "" {
			if srv, err = fleet.OpenServer(*stateDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "tinysdr-fleet: serving campaign API on %s (journal: %s)\n", *serve, *stateDir)
		} else {
			srv = fleet.NewServer()
			fmt.Fprintf(os.Stderr, "tinysdr-fleet: serving campaign API on %s (in-memory)\n", *serve)
		}
		httpSrv := &http.Server{Addr: *serve, Handler: srv.Handler()}
		drained := make(chan struct{})
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
		go func() {
			<-sig
			// Graceful drain: stop admitting (creates now 503), cut running
			// campaigns at their next shard boundary, checkpoint + compact
			// the journal, then close the listener. A second signal during
			// the drain is the classic "no really, now" and exits hard —
			// the journal makes that safe.
			fmt.Fprintln(os.Stderr, "tinysdr-fleet: draining (campaigns cut at the next shard boundary)")
			go func() {
				<-sig
				fmt.Fprintln(os.Stderr, "tinysdr-fleet: second signal, exiting without drain")
				os.Exit(1)
			}()
			if err := srv.Drain(context.Background()); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			close(drained)
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = httpSrv.Shutdown(sctx)
		}()
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		<-drained
		fmt.Fprintln(os.Stderr, "tinysdr-fleet: drained")
		return
	}

	spec := fleet.Spec{
		Seed:        *seed,
		Nodes:       *nodes,
		ShardSize:   *shard,
		Mode:        fleet.Mode(*mode),
		Image:       *image,
		ImageKB:     *imageKB,
		Workers:     *workers,
		Faults:      *faults,
		Quorum:      *quorum,
		RetryBudget: *retryBudget,
	}
	var res *fleet.Result
	var err error
	if *remote != "" {
		res, err = runRemote(*remote, *campaignID, *seed, spec)
	} else {
		res, err = fleet.Run(spec)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		printSummary(res)
	}
	// With a quorum the campaign is met at the configured completion
	// fraction; without one QuorumMet reduces to "every node programmed",
	// preserving the historical exit behavior the CI smoke test relies on.
	if !res.QuorumMet {
		fmt.Fprintf(os.Stderr, "tinysdr-fleet: %d/%d nodes failed (completion %.2f, quorum not met)\n",
			res.Failed, len(res.Nodes), res.CompletionFrac)
		os.Exit(1)
	}
}

// runRemote drives the campaign against a served control plane through the
// retrying client. The client-supplied id makes the create idempotent, so
// the whole run — create, poll, fetch — survives a control-plane
// kill/restart and returns a Result byte-identical to the local path's.
func runRemote(base, id string, seed int64, spec fleet.Spec) (*fleet.Result, error) {
	if id == "" {
		id = fmt.Sprintf("cli-%d", seed)
	}
	cl := fleet.NewClient(base, seed)
	ctx := context.Background()
	if _, err := cl.Create(ctx, id, spec); err != nil {
		return nil, err
	}
	camp, err := cl.WaitDone(ctx, id)
	if err != nil {
		return nil, err
	}
	if camp.Status != fleet.StatusDone {
		return nil, fmt.Errorf("tinysdr-fleet: campaign %q ended %s: %s", id, camp.Status, camp.Error)
	}
	return cl.Result(ctx, id)
}

func printSummary(res *fleet.Result) {
	rows := [][]string{
		{"mode", string(res.Spec.Mode)},
		{"image", res.Spec.Image},
		{"nodes", fmt.Sprintf("%d in %d cells of %d", len(res.Nodes), res.Shards, res.Spec.ShardSize)},
		{"fleet time", fmt.Sprintf("%.1f s", res.FleetTime.Seconds())},
		{"air bytes", fmt.Sprintf("%d", res.AirBytes)},
		{"data packets", fmt.Sprintf("%d", res.DataPackets)},
		{"completed", fmt.Sprintf("%d (%.2f of fleet)", res.Completed, res.CompletionFrac)},
		{"failed", fmt.Sprintf("%d", res.Failed)},
	}
	if res.Spec.Faults != "" {
		rows = append(rows, []string{"faults", res.Spec.Faults})
	}
	if res.Spec.Quorum > 0 {
		met := "not met"
		if res.QuorumMet {
			met = "met"
		}
		rows = append(rows, []string{"quorum", fmt.Sprintf("%.2f (%s)", res.Spec.Quorum, met)})
	}
	// Failure taxonomy breakdown, stable order for scripting.
	var classes []string
	for c := range res.Failures {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		rows = append(rows, []string{"failed: " + c, fmt.Sprintf("%d", res.Failures[c])})
	}
	fmt.Print(eval.RenderTable([]string{"Campaign", ""}, rows))
	for _, n := range res.Nodes {
		if n.Err != "" {
			class := n.Class
			if class == "" {
				class = "failed"
			}
			fmt.Printf("node %d (shard %d, %.0f m, %.1f dBm) [%s]: %s\n",
				n.ID, n.Shard, n.DistanceM, n.RSSIdBm, class, n.Err)
		}
	}
}
