// Command tinysdr-fleet is the fleet campaign control plane: it programs
// arbitrary-size tinySDR fleets over the air, either as a one-shot CLI run
// or as an HTTP service that schedules campaigns and serves their per-node
// results as JSON.
//
// One-shot mode runs a single campaign and exits non-zero if any node
// failed (the CI fleet smoke test relies on this):
//
//	tinysdr-fleet -nodes 100 -mode broadcast -image mcu -seed 1
//	tinysdr-fleet -nodes 1000 -mode unicast -workers 8 -json
//
// Server mode exposes the campaign API:
//
//	tinysdr-fleet -serve :8080
//	curl -X POST localhost:8080/campaigns -d '{"nodes":100,"mode":"broadcast","seed":1}'
//	curl localhost:8080/campaigns/c1        # status + summary
//	curl localhost:8080/campaigns/c1/nodes  # per-node results
//
// Campaigns are deterministic: the same spec (seed, nodes, mode, image,
// shard size) yields bit-identical per-node results at any -workers value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"

	"github.com/uwsdr/tinysdr/internal/eval"
	"github.com/uwsdr/tinysdr/internal/fleet"
)

func main() {
	serve := flag.String("serve", "", "serve the campaign HTTP API on this address instead of running one-shot")
	nodes := flag.Int("nodes", 100, "fleet size")
	mode := flag.String("mode", "broadcast", "programming protocol: broadcast or unicast")
	image := flag.String("image", "mcu", "firmware image: lora, ble, or mcu")
	imageKB := flag.Int("image-kb", 0, "MCU image size in kB (0 = the paper's 78 kB)")
	shard := flag.Int("shard", 0, "nodes per AP cell (0 = the paper's 20-node campus)")
	seed := flag.Int64("seed", 1, "campaign seed (geometry, channels, losses)")
	workers := flag.Int("workers", 0, "host worker pool (0 = all CPUs); results identical for any value")
	jsonOut := flag.Bool("json", false, "emit the full campaign result as JSON")
	flag.Parse()

	if *serve != "" {
		srv := fleet.NewServer()
		fmt.Fprintf(os.Stderr, "tinysdr-fleet: serving campaign API on %s\n", *serve)
		if err := http.ListenAndServe(*serve, srv.Handler()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	spec := fleet.Spec{
		Seed:      *seed,
		Nodes:     *nodes,
		ShardSize: *shard,
		Mode:      fleet.Mode(*mode),
		Image:     *image,
		ImageKB:   *imageKB,
		Workers:   *workers,
	}
	res, err := fleet.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		printSummary(res)
	}
	if res.Failed > 0 {
		fmt.Fprintf(os.Stderr, "tinysdr-fleet: %d/%d nodes failed\n", res.Failed, len(res.Nodes))
		os.Exit(1)
	}
}

func printSummary(res *fleet.Result) {
	rows := [][]string{
		{"mode", string(res.Spec.Mode)},
		{"image", res.Spec.Image},
		{"nodes", fmt.Sprintf("%d in %d cells of %d", len(res.Nodes), res.Shards, res.Spec.ShardSize)},
		{"fleet time", fmt.Sprintf("%.1f s", res.FleetTime.Seconds())},
		{"air bytes", fmt.Sprintf("%d", res.AirBytes)},
		{"data packets", fmt.Sprintf("%d", res.DataPackets)},
		{"failed", fmt.Sprintf("%d", res.Failed)},
	}
	fmt.Print(eval.RenderTable([]string{"Campaign", ""}, rows))
	for _, n := range res.Nodes {
		if n.Err != "" {
			fmt.Printf("node %d (shard %d, %.0f m, %.1f dBm): %s\n",
				n.ID, n.Shard, n.DistanceM, n.RSSIdBm, n.Err)
		}
	}
}
