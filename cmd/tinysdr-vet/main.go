// Command tinysdr-vet runs the repo's invariant analyzers — noallocinto,
// determinism, goroutinehygiene, seedflow (internal/lint) — plus the stock
// `go vet` passes over the given packages, and compares the resulting
// diagnostic/waiver counts against testdata/vet.golden so that new
// violations (or silently accreting waivers) fail CI.
//
// Usage:
//
//	go run ./cmd/tinysdr-vet ./...             # lint + stock vet + golden gate
//	go run ./cmd/tinysdr-vet -update-golden ./...
//	go run ./cmd/tinysdr-vet -no-govet ./internal/dsp
//
// A diagnostic is suppressed only by a same-line (or line-above)
// "//lint:<token> reason" waiver with a non-empty reason; the per-token
// waiver counts are pinned by the golden file, so every waiver is a
// reviewed, written-down decision.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"github.com/uwsdr/tinysdr/internal/lint"
)

func main() {
	goldenFlag := flag.String("golden", "", "golden counts file (default <module root>/testdata/vet.golden when present)")
	updateGolden := flag.Bool("update-golden", false, "rewrite the golden counts file from this run")
	noGovet := flag.Bool("no-govet", false, "skip the stock `go vet` passes")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tinysdr-vet [flags] [packages]\n\nAnalyzers:\n")
		for _, az := range lint.Suite() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s (waiver //lint:%s) %s\n", az.Name, az.Waiver, az.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}

	if !*noGovet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Stdout = os.Stdout
		vet.Stderr = os.Stderr
		if err := vet.Run(); err != nil {
			fatal(fmt.Errorf("stock go vet failed: %v", err))
		}
	}

	res, err := lint.Run(".", patterns, lint.Suite())
	if err != nil {
		fatal(err)
	}
	for _, d := range res.Diags {
		fmt.Println(relDiag(root, d))
	}

	goldenPath := *goldenFlag
	if goldenPath == "" {
		p := filepath.Join(root, "testdata", "vet.golden")
		if _, err := os.Stat(p); err == nil || *updateGolden {
			goldenPath = p
		}
	}
	if *updateGolden {
		if goldenPath == "" {
			fatal(fmt.Errorf("-update-golden needs a -golden path"))
		}
		if err := os.WriteFile(goldenPath, []byte(lint.FormatGolden(res)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("tinysdr-vet: wrote %s\n", goldenPath)
	} else if goldenPath != "" {
		golden, err := os.ReadFile(goldenPath)
		if err != nil {
			fatal(err)
		}
		if err := lint.CompareGolden(res, string(golden)); err != nil {
			fatal(err)
		}
	}
	if len(res.Diags) > 0 {
		fatal(fmt.Errorf("%d diagnostic(s)", len(res.Diags)))
	}
}

// relDiag shortens absolute file paths to module-relative for readable,
// machine-stable output.
func relDiag(root string, d lint.Diag) string {
	if rel, err := filepath.Rel(root, d.File); err == nil && !strings.HasPrefix(rel, "..") {
		d.File = rel
	}
	return d.String()
}

// moduleRoot resolves the enclosing module's directory via go env GOMOD.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("tinysdr-vet: go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("tinysdr-vet: not inside a module")
	}
	return filepath.Dir(gomod), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tinysdr-vet: %v\n", err)
	os.Exit(1)
}
