// Command tinysdr-sense drives the crowd-sourced spectrum sensing
// subsystem (internal/sense): simulated fleets of mobile nodes measure
// the band through the chunked RX seam, report quantized spectra over a
// compact binary wire format, and an aggregator merges the streams into
// a time×frequency occupancy map.
//
// Usage:
//
//	tinysdr-sense sweep -nodes 10000 -ticks 6 -workers 8 -out map.tsom
//	tinysdr-sense show -in map.tsom
//	tinysdr-sense serve -addr :8080
//	tinysdr-sense roundtrip -nodes 40 -ticks 3
//	tinysdr-sense bench -reports 200000 -min-rps 50000
//
// sweep runs the fleet simulation (byte-identical map at any -workers;
// -verify re-runs at one worker and diffs). serve exposes the ingest
// HTTP API. roundtrip drives reports through a live HTTP server and
// requires the served map to equal local aggregation bit for bit — the
// CI smoke test. bench measures single-process ingest throughput and
// exits non-zero below -min-rps.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/uwsdr/tinysdr/internal/eval"
	"github.com/uwsdr/tinysdr/internal/sense"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "roundtrip":
		err = cmdRoundtrip(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tinysdr-sense:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tinysdr-sense <sweep|show|serve|roundtrip|bench> [flags]
  sweep      simulate a sensing fleet into an occupancy map (-verify: 1-worker diff)
  show       render a stored occupancy map
  serve      serve the report ingest HTTP API
  roundtrip  reports through a live HTTP server vs local aggregation (CI smoke)
  bench      single-process ingest throughput (-min-rps gates)
run 'tinysdr-sense <cmd> -h' for per-command flags`)
}

// sweepFlags are the fleet-shape knobs shared by sweep and roundtrip.
func sweepFlags(fs *flag.FlagSet) *sense.SweepConfig {
	cfg := &sense.SweepConfig{World: sense.DefaultWorld()}
	fs.IntVar(&cfg.Nodes, "nodes", 1000, "fleet size")
	fs.IntVar(&cfg.Ticks, "ticks", 4, "measurement intervals")
	fs.IntVar(&cfg.FFTSize, "fft", 256, "spectral bins (power of two)")
	fs.Int64Var(&cfg.Seed, "seed", 1, "sweep seed; same seed, same map bits")
	fs.IntVar(&cfg.Workers, "workers", 0, "worker pool (0 = all CPUs); map identical for any value")
	fs.Float64Var(&cfg.ThresholdDBm, "threshold", -85, "occupancy threshold in dBm")
	fs.Float64Var(&cfg.World.NodeStepM, "node-step", 1.5, "radial spacing between node start positions in m")
	return cfg
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	cfg := sweepFlags(fs)
	out := fs.String("out", "", "write the marshaled occupancy map here")
	verify := fs.Bool("verify", false, "re-run at 1 worker and require identical map bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	start := time.Now()
	res, err := sense.Sweep(*cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if *verify {
		one := *cfg
		one.Workers = 1
		serial, err := sense.Sweep(one)
		if err != nil {
			return err
		}
		if !bytes.Equal(res.MapBytes, serial.MapBytes) {
			return fmt.Errorf("occupancy map differs between -workers %d and 1", cfg.Workers)
		}
		fmt.Println("verify: map byte-identical at 1 worker")
	}
	var m sense.Map
	if err := m.UnmarshalBinary(res.MapBytes); err != nil {
		return err
	}
	printMap(&m)
	fmt.Printf("%d reports (%.2f MiB) in %.2fs, %.0f reports/s end to end\n",
		res.Reports, float64(res.WireBytes)/(1<<20), elapsed.Seconds(),
		float64(res.Reports)/elapsed.Seconds())
	if *out != "" {
		if err := os.WriteFile(*out, res.MapBytes, 0o644); err != nil {
			return err
		}
		fmt.Printf("map written to %s (%d bytes)\n", *out, len(res.MapBytes))
	}
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	in := fs.String("in", "", "occupancy map file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("show needs -in")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var m sense.Map
	if err := m.UnmarshalBinary(data); err != nil {
		return err
	}
	printMap(&m)
	return nil
}

// printMap renders the summary table plus a per-tick occupancy strip —
// enough to see emitters and duty cycles at a glance in a terminal.
func printMap(m *sense.Map) {
	sum := m.Summarize()
	rows := [][]string{
		{"grid", fmt.Sprintf("%d ticks × %d bins (%g Hz band)", m.Ticks, m.Bins, m.SampleRate)},
		{"reports", fmt.Sprintf("%d", sum.Reports)},
		{"threshold", fmt.Sprintf("%g dBm", sum.ThresholdDBm)},
		{"mean occupancy", fmt.Sprintf("%.3f", sum.Occupancy)},
		{"peak power", fmt.Sprintf("%.2f dBm", sum.PeakDBm)},
	}
	fmt.Print(eval.RenderTable([]string{"Occupancy map", ""}, rows))
	// One strip per tick, bins bucketed into 64 columns, '0'..'9' by
	// occupancy decile.
	const cols = 64
	for tick := 0; tick < m.Ticks; tick++ {
		strip := make([]byte, cols)
		for c := 0; c < cols; c++ {
			lo, hi := c*m.Bins/cols, (c+1)*m.Bins/cols
			if hi == lo {
				hi = lo + 1
			}
			var occ float64
			for b := lo; b < hi && b < m.Bins; b++ {
				occ += m.Cell(tick, b).Occupancy()
			}
			occ /= float64(hi - lo)
			d := int(occ * 9.999)
			strip[c] = byte('0' + d)
		}
		fmt.Printf("tick %3d |%s|\n", tick, strip)
	}
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	ticks := fs.Int("ticks", 16, "map time rows")
	bins := fs.Int("bins", 256, "map frequency bins")
	rate := fs.Float64("rate", 1e6, "sensed bandwidth in Hz")
	threshold := fs.Float64("threshold", -85, "occupancy threshold in dBm")
	budget := fs.Int64("budget", 0, "in-flight ingest budget in bytes (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := sense.NewMap(*ticks, *bins, *rate, *threshold)
	if err != nil {
		return err
	}
	agg, err := sense.NewAggregator(m, *budget)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tinysdr-sense: serving ingest API on %s (%d×%d map)\n", *addr, *ticks, *bins)
	return http.ListenAndServe(*addr, sense.NewHandler(agg))
}

func cmdRoundtrip(args []string) error {
	fs := flag.NewFlagSet("roundtrip", flag.ExitOnError)
	cfg := sweepFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// A live server over a loopback listener, and a local reference
	// aggregator fed the same wire bytes.
	srvMap, err := sense.NewMap(cfg.Ticks, cfg.FFTSize, cfg.World.SampleRate, cfg.ThresholdDBm)
	if err != nil {
		return err
	}
	srvAgg, err := sense.NewAggregator(srvMap, 0)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: sense.NewHandler(srvAgg)}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	localMap, err := sense.NewMap(cfg.Ticks, cfg.FFTSize, cfg.World.SampleRate, cfg.ThresholdDBm)
	if err != nil {
		return err
	}
	localAgg, err := sense.NewAggregator(localMap, 0)
	if err != nil {
		return err
	}

	sensor, err := sense.NewSensor(&cfg.World, cfg.FFTSize, cfg.Seed)
	if err != nil {
		return err
	}
	posted := 0
	for node := 0; node < cfg.Nodes; node++ {
		for tick := 0; tick < cfg.Ticks; tick++ {
			wire, err := sensor.Measure(node, tick).MarshalBinary()
			if err != nil {
				return err
			}
			if err := localAgg.IngestWire(wire); err != nil {
				return err
			}
			resp, err := http.Post(base+"/reports", "application/octet-stream", bytes.NewReader(wire))
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				return fmt.Errorf("POST /reports: status %d", resp.StatusCode)
			}
			posted++
		}
	}

	resp, err := http.Get(base + "/map")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	served, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	local, err := localAgg.MapBytes()
	if err != nil {
		return err
	}
	if !bytes.Equal(served, local) {
		return fmt.Errorf("served map (%d bytes) differs from local aggregation (%d bytes)", len(served), len(local))
	}
	fmt.Printf("roundtrip: %d reports over HTTP, served map byte-identical to local aggregation (%d bytes)\n",
		posted, len(served))
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	reports := fs.Int("reports", 200000, "reports to ingest")
	bins := fs.Int("bins", 256, "bins per report")
	ticks := fs.Int("ticks", 16, "map time rows")
	minRPS := fs.Float64("min-rps", 0, "fail below this ingest rate (0 = report only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := sense.NewMap(*ticks, *bins, 1e6, -85)
	if err != nil {
		return err
	}
	agg, err := sense.NewAggregator(m, 0)
	if err != nil {
		return err
	}
	// Pre-marshal a report pool so the benchmark times the ingest path
	// (admission, parse, CRC, absorb) and nothing else. The pool cycles
	// codes and ticks so cache behavior resembles live traffic.
	pool := make([][]byte, 64)
	codes := make([]int16, *bins)
	for i := range pool {
		for b := range codes {
			codes[b] = int16(-400 + (i*31+b*7)%256)
		}
		r := sense.Report{Node: uint32(i), Tick: uint32(i % *ticks), SampleRate: 1e6, Codes: codes}
		wire, err := r.MarshalBinary()
		if err != nil {
			return err
		}
		pool[i] = wire
	}

	start := time.Now()
	for i := 0; i < *reports; i++ {
		if err := agg.IngestWire(pool[i%len(pool)]); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	rps := float64(*reports) / elapsed.Seconds()
	mbps := float64(*reports*sense.WireSize(*bins)) / (1 << 20) / elapsed.Seconds()
	fmt.Printf("ingested %d reports (%d bins) in %.3fs: %.0f reports/s, %.1f MiB/s\n",
		*reports, *bins, elapsed.Seconds(), rps, mbps)
	if *minRPS > 0 && rps < *minRPS {
		return fmt.Errorf("ingest rate %.0f reports/s below the %.0f floor", rps, *minRPS)
	}
	return nil
}
