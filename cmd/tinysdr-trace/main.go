// Command tinysdr-trace manages the record/replay IQ trace store
// (internal/trace): content-addressed captures of the waveforms a live
// link delivers to its demodulator, replayable bit-exactly without the
// modulator or channel.
//
// Usage:
//
//	tinysdr-trace record -store testdata/traces -name lora-ref -phy lora \
//	    -scenario "fading=rician:12,cfojitter=50" -seed 7 -packets 8 -margin 18
//	tinysdr-trace replay -store testdata/traces -name lora-ref -verify
//	tinysdr-trace replay -store testdata/traces -verify      # every stored trace
//	tinysdr-trace ls -store testdata/traces
//	tinysdr-trace gc -store testdata/traces
//
// record drives a live link through the composed scenario with a capture
// tap installed, so the recorded run itself demodulates the quantized
// samples a replay will decode. replay re-demodulates stored waveforms;
// with -verify it diffs per-packet losses, PER and RSSI byte-for-byte
// against the recorded manifest — the cross-version A/B gate CI runs on
// the committed corpus.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/uwsdr/tinysdr/internal/phy"
	"github.com/uwsdr/tinysdr/internal/sim/scenario"
	"github.com/uwsdr/tinysdr/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "ls":
		err = cmdLs(os.Args[2:])
	case "gc":
		err = cmdGC(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tinysdr-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tinysdr-trace <record|replay|ls|gc> [flags]
  record  capture a live link run into the store
  replay  re-demodulate a stored trace (-verify: byte-exact A/B gate)
  ls      list stored traces
  gc      remove blobs no manifest references
run 'tinysdr-trace <cmd> -h' for per-command flags`)
}

func storeFlag(fs *flag.FlagSet) *string {
	return fs.String("store", "testdata/traces", "trace store directory")
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	dir := storeFlag(fs)
	name := fs.String("name", "", "trace name to store under (required)")
	phyName := fs.String("phy", "lora", "registered protocol to capture")
	spec := fs.String("scenario", "", "channel scenario (sim/scenario grammar), e.g. \"fading=rician:12,cfojitter=50\"")
	seed := fs.Int64("seed", 7, "channel randomness seed")
	packets := fs.Int("packets", 8, "packets to capture")
	margin := fs.Float64("margin", 18, "link budget above RX sensitivity in dB")
	bits := fs.Int("bits", 13, "capture quantization in bits (1..16)")
	payload := fs.String("payload", "tinysdr-phy-golden", "transmitted payload")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("record needs -name")
	}

	tx, err := phy.New(*phyName)
	if err != nil {
		return err
	}
	rx, err := phy.New(*phyName)
	if err != nil {
		return err
	}
	parsed, err := scenario.Parse(*spec)
	if err != nil {
		return err
	}
	sc, err := parsed.Build(scenario.Link{
		SampleRate: rx.SampleRate(),
		RSSIdBm:    rx.SensitivityDBm() + *margin,
		FloorDBm:   rx.NoiseFloorDBm(),
	})
	if err != nil {
		return err
	}
	link, err := phy.Open(tx, rx, sc, *seed)
	if err != nil {
		return err
	}
	tr, err := trace.Record(link, trace.Meta{
		PHY:        *phyName,
		Seed:       *seed,
		SampleRate: rx.SampleRate(),
		Bits:       *bits,
		Scenario:   *spec,
		Payload:    []byte(*payload),
	}, *packets)
	if err != nil {
		return err
	}
	store, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	if err := store.Put(*name, tr); err != nil {
		return err
	}
	st := tr.Manifest.Stats()
	fmt.Printf("%s: recorded %d packets (%d blobs), PER %.3f, RSSI %.2f dBm\n",
		*name, st.Packets, len(tr.Blobs), st.PER, st.RSSIdBm)
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	dir := storeFlag(fs)
	name := fs.String("name", "", "trace to replay (empty: every stored trace)")
	workers := fs.Int("workers", 0, "replay worker pool size (0 = all CPUs)")
	verify := fs.Bool("verify", false, "fail unless replay metrics are byte-identical to the recorded run")
	fs.Parse(args)

	store, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	names := []string{*name}
	if *name == "" {
		if names, err = store.List(); err != nil {
			return err
		}
		if len(names) == 0 {
			return fmt.Errorf("no traces in %s", *dir)
		}
	}
	for _, n := range names {
		tr, err := store.Get(n)
		if err != nil {
			return err
		}
		if *verify {
			if err := trace.Verify(tr, *workers); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
			st := tr.Manifest.Stats()
			fmt.Printf("%s: verified %d packets byte-identical (PER %.3f, RSSI %.2f dBm)\n",
				n, st.Packets, st.PER, st.RSSIdBm)
			continue
		}
		st, err := trace.Replay(tr, *workers)
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		fmt.Printf("%s: replayed %d packets, PER %.3f, RSSI %.2f dBm\n",
			n, st.Packets, st.PER, st.RSSIdBm)
	}
	return nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir := storeFlag(fs)
	fs.Parse(args)

	store, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	names, err := store.List()
	if err != nil {
		return err
	}
	for _, n := range names {
		tr, err := store.Get(n)
		if err != nil {
			return err
		}
		m := &tr.Manifest
		samples := 0
		for _, p := range m.Packets {
			samples += p.Samples
		}
		fmt.Printf("%-20s %-12s %3d pkts %9d samples %2d-bit  seed %d  %q\n",
			n, m.PHY, len(m.Packets), samples, m.Bits, m.Seed, m.Scenario)
	}
	return nil
}

func cmdGC(args []string) error {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	dir := storeFlag(fs)
	fs.Parse(args)

	store, err := trace.OpenStore(*dir)
	if err != nil {
		return err
	}
	removed, err := store.GC()
	if err != nil {
		return err
	}
	for _, h := range removed {
		fmt.Printf("removed %016x\n", h)
	}
	fmt.Printf("gc: %d blobs removed\n", len(removed))
	return nil
}
