// Command tinysdr-ap simulates the OTA access point (§3.4): it compresses a
// firmware image and programs the 20-node campus testbed over the LoRa
// backbone, reporting per-node timing, retransmissions and energy.
//
// Usage:
//
//	tinysdr-ap -image lora   # LoRa modem FPGA bitstream (579 kB)
//	tinysdr-ap -image ble    # BLE beacon FPGA bitstream
//	tinysdr-ap -image mcu    # 78 kB MCU firmware
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/uwsdr/tinysdr/internal/eval"
	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/ota"
	"github.com/uwsdr/tinysdr/internal/testbed"
)

func main() {
	image := flag.String("image", "mcu", "firmware image: lora, ble, or mcu")
	seed := flag.Int64("seed", 1, "deployment and channel seed")
	flag.Parse()

	var (
		img    []byte
		design *fpga.Design
		target = ota.TargetFPGA
	)
	switch *image {
	case "lora":
		design = fpga.LoRaTRXDesign(8)
		img = fpga.SynthBitstream(design)
	case "ble":
		design = fpga.BLEBeaconDesign()
		img = fpga.SynthBitstream(design)
	case "mcu":
		img = fpga.SynthMCUFirmware(78*1024, *seed)
		target = ota.TargetMCU
	default:
		fmt.Fprintf(os.Stderr, "unknown image %q\n", *image)
		os.Exit(2)
	}

	u, err := ota.BuildUpdate(target, img)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("image: %s (%d kB raw, %d kB compressed, %d packets)\n",
		*image, len(img)/1024, u.CompressedSize()/1024, len(u.Chunks))

	campus := testbed.NewCampus(*seed)
	results := campus.ProgramAll(u, design)

	rows := make([][]string, 0, len(results))
	for _, r := range results {
		status := "ok"
		dur, retx, energy := "-", "-", "-"
		if r.Err != nil {
			status = r.Err.Error()
		} else {
			dur = fmt.Sprintf("%.1f s", r.Report.Duration.Seconds())
			retx = fmt.Sprintf("%d", r.Report.Retransmissions)
			energy = fmt.Sprintf("%.2f J", r.Report.EnergyJ)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.NodeID),
			fmt.Sprintf("%.0f m", r.Distance),
			fmt.Sprintf("%.1f dBm", r.RSSIdBm),
			dur, retx, energy, status,
		})
	}
	fmt.Print(eval.RenderTable(
		[]string{"Node", "Distance", "RSSI", "Duration", "Retx", "Energy", "Status"}, rows))

	if mean, err := testbed.MeanDuration(results); err == nil {
		fmt.Printf("\nmean programming time: %.1f s\n", mean.Seconds())
	}
	fmt.Println("\nCDF:")
	for _, p := range testbed.CDF(results) {
		fmt.Printf("  %6.2f min  %4.0f%%\n", p.Duration.Minutes(), p.Fraction*100)
	}
}
