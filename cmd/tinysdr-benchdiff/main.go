// Command tinysdr-benchdiff compares two bench JSON files produced by
// `tinysdr-eval -bench-json` and enforces the perf trajectory: it renders a
// per-experiment wall-time table with metric drift, and exits non-zero when
// the total wall time of the experiments common to both files regresses by
// more than the threshold (per-experiment times on quick runs are too noisy
// to gate individually; the total is stable enough for a soft CI gate).
//
// Usage:
//
//	tinysdr-benchdiff old.json new.json
//	tinysdr-benchdiff -max-regress 15 BENCH_baseline.json fresh.json
//	tinysdr-benchdiff -metric-drift 25 BENCH_pr5.json fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

// benchFile mirrors tinysdr-eval's -bench-json layout.
type benchFile struct {
	Seed        int64        `json:"seed"`
	Quick       bool         `json:"quick"`
	Adaptive    *bool        `json:"adaptive"` // absent in pre-adaptive files
	Eps         float64      `json:"eps"`
	Experiments []benchEntry `json:"experiments"`
}

type benchEntry struct {
	ID      string             `json:"id"`
	Millis  float64            `json:"wall_ms"`
	Metrics map[string]float64 `json:"metrics"`
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Experiments) == 0 {
		return nil, fmt.Errorf("%s: no experiments", path)
	}
	return &f, nil
}

func describe(f *benchFile) string {
	mode := "fixed-budget"
	if f.Adaptive != nil && *f.Adaptive {
		mode = fmt.Sprintf("adaptive eps=%g", f.Eps)
	}
	return fmt.Sprintf("seed=%d quick=%v %s", f.Seed, f.Quick, mode)
}

func main() {
	maxRegress := flag.Float64("max-regress", 15,
		"fail when total wall time of common experiments regresses by more than this percent")
	metricDrift := flag.Float64("metric-drift", 10,
		"report metrics whose relative change exceeds this percent (informational)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: tinysdr-benchdiff [-max-regress pct] [-metric-drift pct] old.json new.json")
		os.Exit(2)
	}
	oldF, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newF, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("old: %s (%s)\nnew: %s (%s)\n\n", flag.Arg(0), describe(oldF), flag.Arg(1), describe(newF))

	oldByID := map[string]benchEntry{}
	for _, e := range oldF.Experiments {
		oldByID[e.ID] = e
	}
	var ids []string
	newByID := map[string]benchEntry{}
	for _, e := range newF.Experiments {
		newByID[e.ID] = e
		if _, ok := oldByID[e.ID]; ok {
			ids = append(ids, e.ID)
		} else {
			fmt.Printf("%-16s only in new file (%.1f ms)\n", e.ID, e.Millis)
		}
	}
	for _, e := range oldF.Experiments {
		if _, ok := newByID[e.ID]; !ok {
			fmt.Printf("%-16s only in old file (%.1f ms)\n", e.ID, e.Millis)
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "no experiments in common")
		os.Exit(2)
	}
	sort.Strings(ids)

	fmt.Printf("%-16s %10s %10s %8s\n", "experiment", "old ms", "new ms", "delta")
	var oldTotal, newTotal float64
	drifted := 0
	for _, id := range ids {
		o, n := oldByID[id], newByID[id]
		oldTotal += o.Millis
		newTotal += n.Millis
		fmt.Printf("%-16s %10.1f %10.1f %+7.1f%%\n", id, o.Millis, n.Millis, pctDelta(o.Millis, n.Millis))
		for _, k := range sortedKeys(o.Metrics) {
			ov := o.Metrics[k]
			nv, ok := n.Metrics[k]
			if !ok {
				fmt.Printf("    metric %-28s dropped (old %.4g)\n", k, ov)
				drifted++
				continue
			}
			if relDrift(ov, nv) > *metricDrift {
				fmt.Printf("    metric %-28s %.4g -> %.4g (%+.1f%%)\n", k, ov, nv, pctDelta(ov, nv))
				drifted++
			}
		}
	}
	delta := pctDelta(oldTotal, newTotal)
	fmt.Printf("%-16s %10.1f %10.1f %+7.1f%%\n", "TOTAL", oldTotal, newTotal, delta)
	if drifted > 0 {
		fmt.Printf("\n%d metric(s) drifted more than %.0f%% (informational; wall time is the gate)\n",
			drifted, *metricDrift)
	}
	if delta > *maxRegress {
		fmt.Fprintf(os.Stderr, "\nFAIL: total wall time regressed %.1f%% (> %.0f%% threshold)\n", delta, *maxRegress)
		os.Exit(1)
	}
	fmt.Printf("\nOK: total wall time %+.1f%% (threshold +%.0f%%)\n", delta, *maxRegress)
}

// pctDelta is the signed relative change from old to new in percent.
func pctDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (new - old) / math.Abs(old) * 100
}

// relDrift is the magnitude of the relative change, tolerant of zero
// baselines (any change from exactly 0 counts as full drift).
func relDrift(old, new float64) float64 {
	if old == new {
		return 0
	}
	if old == 0 {
		return math.Inf(1)
	}
	return math.Abs(new-old) / math.Abs(old) * 100
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
